package simplex

import (
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
)

// randomLP builds a random bounded LP with n variables and rows rows.
func randomLP(rng *rand.Rand, n, rows int) *lp.Model {
	m := lp.NewModel("rnd")
	for j := 0; j < n; j++ {
		m.AddContinuous("", 0, float64(1+rng.Intn(10)), float64(rng.Intn(21)-10))
	}
	for r := 0; r < rows; r++ {
		var terms []lp.Term
		for j := 0; j < n; j++ {
			if c := rng.Intn(9) - 4; c != 0 {
				terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: float64(c)})
			}
		}
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		m.AddRow("", terms, sense, float64(rng.Intn(15)-3))
	}
	return m
}

// TestSolverReuseMatchesFreshSolve proves the scratch-reusing Solver is
// bit-identical to a fresh per-call Solve across a sequence of models of
// varying shape and size — the property the milp workers rely on.
func TestSolverReuseMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	reused := NewSolver(nil)
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(12)
		rows := 1 + rng.Intn(8)
		m := randomLP(rng, n, rows)

		got, errGot := reused.Solve(m)
		want, errWant := Solve(m, nil)
		if (errGot == nil) != (errWant == nil) {
			t.Fatalf("trial %d: error mismatch: reused %v, fresh %v", trial, errGot, errWant)
		}
		if errGot != nil {
			continue
		}
		if got.Status != want.Status || got.Iterations != want.Iterations {
			t.Fatalf("trial %d: status/iters mismatch: reused (%v,%d), fresh (%v,%d)",
				trial, got.Status, got.Iterations, want.Status, want.Iterations)
		}
		if got.Status != lp.StatusOptimal {
			continue
		}
		if got.Objective != want.Objective {
			t.Fatalf("trial %d: objective mismatch: reused %v, fresh %v", trial, got.Objective, want.Objective)
		}
		for j := range want.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("trial %d: x[%d] mismatch: reused %v, fresh %v", trial, j, got.X[j], want.X[j])
			}
		}
		for r := range want.DualValues {
			if got.DualValues[r] != want.DualValues[r] {
				t.Fatalf("trial %d: dual[%d] mismatch: reused %v, fresh %v", trial, r, got.DualValues[r], want.DualValues[r])
			}
		}
	}
}

// TestSolverShrinkingModels exercises reuse where a large solve precedes
// small ones, so stale tail state in reused slices would be live if reset
// failed to truncate or zero it.
func TestSolverShrinkingModels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reused := NewSolver(nil)
	big := randomLP(rng, 30, 20)
	if _, err := reused.Solve(big); err != nil {
		t.Fatalf("big solve: %v", err)
	}
	for trial := 0; trial < 50; trial++ {
		m := randomLP(rng, 1+rng.Intn(5), 1+rng.Intn(3))
		got, errGot := reused.Solve(m)
		want, errWant := Solve(m, nil)
		if (errGot == nil) != (errWant == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errGot, errWant)
		}
		if errGot != nil {
			continue
		}
		if got.Status != want.Status || got.Objective != want.Objective || got.Iterations != want.Iterations {
			t.Fatalf("trial %d: (%v, %v, %d) vs (%v, %v, %d)", trial,
				got.Status, got.Objective, got.Iterations, want.Status, want.Objective, want.Iterations)
		}
	}
}
