package simplex

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
)

func solveOrFatal(t *testing.T, m *lp.Model) *lp.Solution {
	t.Helper()
	sol, err := Solve(m, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSolveTinyLP(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 3, x,y >= 0.
	// Optimum: y=3, x=1, obj = -7.
	m := lp.NewModel("tiny")
	x := m.AddContinuous("x", 0, 3, -1)
	y := m.AddContinuous("y", 0, 3, -2)
	m.AddRow("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-7)) > 1e-7 {
		t.Errorf("objective = %v, want -7", sol.Objective)
	}
	if math.Abs(sol.Value(x)-1) > 1e-7 || math.Abs(sol.Value(y)-3) > 1e-7 {
		t.Errorf("point = (%v, %v), want (1, 3)", sol.Value(x), sol.Value(y))
	}
}

func TestSolveEqualityAndGE(t *testing.T) {
	// min 2x + 3y  s.t. x + y = 10, y - x >= 2, x,y >= 0.
	// x is cheaper so the GE row binds: y = x+2, x+y = 10 → x=4, y=6, obj 26.
	m := lp.NewModel("eqge")
	x := m.AddContinuous("x", 0, math.Inf(1), 2)
	y := m.AddContinuous("y", 0, math.Inf(1), 3)
	m.AddRow("sum", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.EQ, 10)
	m.AddRow("diff", []lp.Term{{Var: y, Coef: 1}, {Var: x, Coef: -1}}, lp.GE, 2)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-26) > 1e-6 {
		t.Errorf("objective = %v, want 26", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := lp.NewModel("infeas")
	x := m.AddContinuous("x", 0, 5, 1)
	m.AddRow("lo", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 10)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveInfeasibleEquality(t *testing.T) {
	m := lp.NewModel("infeas-eq")
	x := m.AddContinuous("x", 0, 1, 0)
	y := m.AddContinuous("y", 0, 1, 0)
	m.AddRow("a", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.EQ, 3)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	m := lp.NewModel("unb")
	x := m.AddContinuous("x", 0, math.Inf(1), -1)
	y := m.AddContinuous("y", 0, math.Inf(1), 0)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -1}}, lp.LE, 5)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveFreeVariable(t *testing.T) {
	// min x  with x free, x >= -7 via row.
	m := lp.NewModel("free")
	x := m.AddContinuous("x", math.Inf(-1), math.Inf(1), 1)
	m.AddRow("lo", []lp.Term{{Var: x, Coef: 1}}, lp.GE, -7)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-7)) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal -7", sol.Status, sol.Objective)
	}
}

func TestSolveNegativeLowerBounds(t *testing.T) {
	// min x + y  with x ∈ [-3, 3], y ∈ [-2, 2], x + y >= -4.
	// Optimum x=-3, y=-1 or x=-2,y=-2: obj -4 (constraint binds).
	m := lp.NewModel("neg")
	x := m.AddContinuous("x", -3, 3, 1)
	y := m.AddContinuous("y", -2, 2, 1)
	m.AddRow("r", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GE, -4)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-4)) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal -4", sol.Status, sol.Objective)
	}
}

func TestSolveNoVariables(t *testing.T) {
	m := lp.NewModel("empty")
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal || sol.Objective != 0 {
		t.Fatalf("empty model: %v %v", sol.Status, sol.Objective)
	}
}

func TestSolveAssignmentLPIsIntegral(t *testing.T) {
	// 3 groups × 2 DCs transportation structure: LP relaxation of an
	// assignment problem with non-degenerate costs lands on a vertex with
	// integral values.
	m := lp.NewModel("assign")
	costs := [][]float64{{5, 9}, {7, 3}, {4, 6}}
	sizes := []float64{2, 3, 1}
	vars := make([][]lp.VarID, 3)
	for i := range vars {
		vars[i] = make([]lp.VarID, 2)
		for j := 0; j < 2; j++ {
			vars[i][j] = m.AddContinuous("", 0, 1, costs[i][j])
		}
		m.AddRow("", []lp.Term{{Var: vars[i][0], Coef: 1}, {Var: vars[i][1], Coef: 1}}, lp.EQ, 1)
	}
	for j := 0; j < 2; j++ {
		terms := make([]lp.Term, 3)
		for i := 0; i < 3; i++ {
			terms[i] = lp.Term{Var: vars[i][j], Coef: sizes[i]}
		}
		m.AddRow("", terms, lp.LE, 4)
	}
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimal: g0→dc0 (5), g1→dc1 (3), g2→dc0 (4) = 12, capacities 3 ≤ 4 and 3 ≤ 4.
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	for i := range vars {
		for j := range vars[i] {
			v := sol.Value(vars[i][j])
			if math.Abs(v-math.Round(v)) > 1e-6 {
				t.Errorf("fractional assignment x[%d][%d] = %v", i, j, v)
			}
		}
	}
}

// verifyOptimalityCertificate checks strong duality: the primal point is
// feasible, the duals are sign-consistent with row senses, and the primal
// and dual objectives agree. Together these certify optimality
// independently of the solver's own claims.
func verifyOptimalityCertificate(t *testing.T, m *lp.Model, sol *lp.Solution) {
	t.Helper()
	const tol = 1e-5
	if err := m.CheckFeasible(sol.X, tol); err != nil {
		t.Fatalf("returned point infeasible: %v", err)
	}
	y := sol.DualValues
	if len(y) != m.NumRows() {
		t.Fatalf("duals length %d, want %d", len(y), m.NumRows())
	}
	// Reduced costs.
	d := make([]float64, m.NumVars())
	for j := 0; j < m.NumVars(); j++ {
		d[j] = m.Var(lp.VarID(j)).Cost
	}
	for r := 0; r < m.NumRows(); r++ {
		row := m.Row(lp.RowID(r))
		for _, term := range row.Terms {
			d[term.Var] -= y[r] * term.Coef
		}
		// Dual sign consistency.
		switch row.Sense {
		case lp.LE:
			if y[r] > tol {
				t.Errorf("row %d (LE) has dual %v > 0", r, y[r])
			}
		case lp.GE:
			if y[r] < -tol {
				t.Errorf("row %d (GE) has dual %v < 0", r, y[r])
			}
		}
	}
	// Dual objective: y'b + Σ_j d_j⁺·l_j + d_j⁻·u_j over finite bounds.
	dualObj := 0.0
	for r := 0; r < m.NumRows(); r++ {
		dualObj += y[r] * m.Row(lp.RowID(r)).RHS
	}
	for j := 0; j < m.NumVars(); j++ {
		v := m.Var(lp.VarID(j))
		scale := math.Max(1, math.Abs(v.Cost))
		switch {
		case d[j] > tol*scale:
			if math.IsInf(v.Lower, -1) {
				t.Errorf("var %d: positive reduced cost %v with infinite lower bound", j, d[j])
				continue
			}
			dualObj += d[j] * v.Lower
		case d[j] < -tol*scale:
			if math.IsInf(v.Upper, 1) {
				t.Errorf("var %d: negative reduced cost %v with infinite upper bound", j, d[j])
				continue
			}
			dualObj += d[j] * v.Upper
		}
	}
	scale := math.Max(1, math.Abs(sol.Objective))
	if math.Abs(dualObj-sol.Objective) > 1e-4*scale {
		t.Errorf("duality gap: primal %v vs dual %v", sol.Objective, dualObj)
	}
}

// --- Brute-force oracle -------------------------------------------------

// bruteForceLP enumerates all basic points of a model whose variables are
// all box-bounded: every choice of n active constraints among {rows as
// equalities} ∪ {x_j = l_j} ∪ {x_j = u_j}, solved exactly, filtered for
// feasibility. For a bounded nonempty polytope the LP optimum is attained
// at such a point. Returns (bestObj, found).
type bruteCons struct {
	coefs []float64
	rhs   float64
}

func bruteForceLP(m *lp.Model, tol float64) (float64, bool) {
	n := m.NumVars()
	var all []bruteCons
	for r := 0; r < m.NumRows(); r++ {
		row := m.Row(lp.RowID(r))
		c := make([]float64, n)
		for _, term := range row.Terms {
			c[term.Var] = term.Coef
		}
		all = append(all, bruteCons{c, row.RHS})
	}
	for j := 0; j < n; j++ {
		v := m.Var(lp.VarID(j))
		lo := make([]float64, n)
		lo[j] = 1
		all = append(all, bruteCons{lo, v.Lower})
		hi := make([]float64, n)
		hi[j] = 1
		all = append(all, bruteCons{hi, v.Upper})
	}
	best := math.Inf(1)
	found := false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(all, idx, n)
			if !ok {
				return
			}
			if m.CheckFeasible(x, tol) != nil {
				return
			}
			if obj := m.Objective(x); obj < best {
				best = obj
				found = true
			}
			return
		}
		for i := start; i < len(all); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// solveSquare solves the n×n system given by the selected constraints via
// Gaussian elimination; returns ok=false for singular systems.
func solveSquare(all []bruteCons, idx []int, n int) ([]float64, bool) {
	a := make([][]float64, n)
	for i, ci := range idx {
		a[i] = make([]float64, n+1)
		copy(a[i], all[ci].coefs)
		a[i][n] = all[ci].rhs
	}
	for col := 0; col < n; col++ {
		p := -1
		best := 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, p = v, r
			}
		}
		if p < 0 {
			return nil, false
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		for k := col; k <= n; k++ {
			a[col][k] /= piv
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = a[i][n]
	}
	return x, true
}

// randomBoxLP builds a random LP with box-bounded variables (so it is
// never unbounded) and small integer-ish data.
func randomBoxLP(rng *rand.Rand) *lp.Model {
	m := lp.NewModel("randbox")
	n := 2 + rng.Intn(3)
	for j := 0; j < n; j++ {
		lo := float64(rng.Intn(3)) - 1
		hi := lo + float64(1+rng.Intn(6))
		cost := float64(rng.Intn(21) - 10)
		m.AddContinuous("", lo, hi, cost)
	}
	rows := 1 + rng.Intn(3)
	for r := 0; r < rows; r++ {
		var terms []lp.Term
		for j := 0; j < n; j++ {
			c := float64(rng.Intn(7) - 3)
			if c != 0 {
				terms = append(terms, lp.Term{Var: lp.VarID(j), Coef: c})
			}
		}
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(15) - 5)
		m.AddRow("", terms, sense, rhs)
	}
	return m
}

// TestSolveAgainstBruteForce cross-checks the simplex against exhaustive
// basic-point enumeration on hundreds of random box-bounded LPs.
func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		m := randomBoxLP(rng)
		sol, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		want, feasible := bruteForceLP(m, 1e-7)
		if !feasible {
			if sol.Status != lp.StatusInfeasible {
				t.Fatalf("trial %d: oracle says infeasible, simplex says %v (obj %v)", trial, sol.Status, sol.Objective)
			}
			continue
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: oracle optimum %v but simplex status %v", trial, want, sol.Status)
		}
		scale := math.Max(1, math.Abs(want))
		if math.Abs(sol.Objective-want) > 1e-5*scale {
			t.Fatalf("trial %d: simplex obj %v, oracle %v", trial, sol.Objective, want)
		}
		verifyOptimalityCertificate(t, m, sol)
	}
}

// TestSolveDegenerateDoesNotCycle builds a classically degenerate LP
// (many redundant constraints through the origin) and checks termination.
func TestSolveDegenerateDoesNotCycle(t *testing.T) {
	m := lp.NewModel("degen")
	x := m.AddContinuous("x", 0, math.Inf(1), -0.75)
	y := m.AddContinuous("y", 0, math.Inf(1), 150)
	z := m.AddContinuous("z", 0, math.Inf(1), -0.02)
	w := m.AddContinuous("w", 0, math.Inf(1), 6)
	// Beale's cycling example (objective signs arranged for minimization).
	m.AddRow("r1", []lp.Term{{Var: x, Coef: 0.25}, {Var: y, Coef: -60}, {Var: z, Coef: -0.04}, {Var: w, Coef: 9}}, lp.LE, 0)
	m.AddRow("r2", []lp.Term{{Var: x, Coef: 0.5}, {Var: y, Coef: -90}, {Var: z, Coef: -0.02}, {Var: w, Coef: 3}}, lp.LE, 0)
	m.AddRow("r3", []lp.Term{{Var: z, Coef: 1}}, lp.LE, 1)
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestSolveBlandForced(t *testing.T) {
	m := lp.NewModel("bland")
	x := m.AddContinuous("x", 0, 3, -1)
	y := m.AddContinuous("y", 0, 3, -2)
	m.AddRow("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	sol, err := Solve(m, &Options{Bland: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-7)) > 1e-7 {
		t.Fatalf("bland solve: %v obj %v", sol.Status, sol.Objective)
	}
}

func TestSolveIterLimit(t *testing.T) {
	m := lp.NewModel("limit")
	var terms []lp.Term
	for j := 0; j < 20; j++ {
		v := m.AddContinuous("", 0, 10, -1)
		terms = append(terms, lp.Term{Var: v, Coef: 1})
	}
	m.AddRow("cap", terms, lp.LE, 50)
	sol, err := Solve(m, &Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit {
		t.Fatalf("status = %v, want iteration-limit", sol.Status)
	}
}

// TestSolveMediumAssignment exercises a mid-size consolidation-shaped LP:
// 40 groups × 8 DCs with capacities, checking the certificate.
func TestSolveMediumAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := lp.NewModel("medium")
	const groups, dcs = 40, 8
	vars := make([][]lp.VarID, groups)
	sizes := make([]float64, groups)
	for i := range vars {
		sizes[i] = float64(1 + rng.Intn(20))
		vars[i] = make([]lp.VarID, dcs)
		for j := 0; j < dcs; j++ {
			vars[i][j] = m.AddContinuous("", 0, 1, float64(10+rng.Intn(90))*sizes[i])
		}
		terms := make([]lp.Term, dcs)
		for j := 0; j < dcs; j++ {
			terms[j] = lp.Term{Var: vars[i][j], Coef: 1}
		}
		m.AddRow("", terms, lp.EQ, 1)
	}
	for j := 0; j < dcs; j++ {
		terms := make([]lp.Term, groups)
		for i := 0; i < groups; i++ {
			terms[i] = lp.Term{Var: vars[i][j], Coef: sizes[i]}
		}
		m.AddRow("", terms, lp.LE, 80)
	}
	sol := solveOrFatal(t, m)
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status = %v after %d iters", sol.Status, sol.Iterations)
	}
	verifyOptimalityCertificate(t, m, sol)
}
