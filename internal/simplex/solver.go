package simplex

import (
	"context"
	"fmt"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/tol"
)

// Solver is a reusable simplex engine. It owns one scratch tableau that
// is re-initialized — not re-allocated — on every Solve call, which
// removes nearly all per-solve allocation when a caller solves a long
// sequence of similarly sized models (each branch & bound worker in
// package milp owns one Solver and puts every node LP through it).
//
// A Solver is NOT safe for concurrent use: its scratch state is shared
// across calls. Give each goroutine its own Solver. Results are
// identical to the package-level Solve function — reset rebuilds the
// tableau byte-for-byte from the model, so reuse never leaks state
// between solves.
type Solver struct {
	opts Options
	t    tableau
}

// NewSolver returns a Solver applying opts (nil for defaults) to every
// subsequent Solve call.
func NewSolver(opts *Options) *Solver {
	s := &Solver{}
	if opts != nil {
		s.opts = *opts
	}
	return s
}

// Solve solves the continuous relaxation of model exactly like the
// package-level Solve, reusing the Solver's scratch state.
func (s *Solver) Solve(model *lp.Model) (*lp.Solution, error) {
	return s.solve(nil, model, nil)
}

// SolveContext is Solve with cancellation (see the package-level
// SolveContext). A nil ctx is treated as context.Background().
func (s *Solver) SolveContext(ctx context.Context, model *lp.Model) (*lp.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.solve(ctx, model, nil)
}

func (s *Solver) solve(ctx context.Context, model *lp.Model, basis *Basis) (*lp.Solution, error) {
	if err := model.Err(); err != nil {
		return nil, fmt.Errorf("simplex: invalid model: %w", err)
	}
	if model.NumVars() == 0 {
		// Trivial: no variables. Feasible iff every row accepts 0.
		for r := 0; r < model.NumRows(); r++ {
			row := model.Row(lp.RowID(r))
			ok := false
			switch row.Sense {
			case lp.LE:
				ok = tol.Geq(row.RHS, 0, lp.FeasTol)
			case lp.GE:
				ok = tol.Leq(row.RHS, 0, lp.FeasTol)
			case lp.EQ:
				ok = tol.Eq(row.RHS, 0, lp.FeasTol)
			}
			if !ok {
				return &lp.Solution{Status: lp.StatusInfeasible}, nil
			}
		}
		return &lp.Solution{Status: lp.StatusOptimal, X: []float64{}, DualValues: make([]float64, model.NumRows())}, nil
	}
	if err := s.t.reset(model, &s.opts); err != nil {
		return nil, err
	}
	s.t.ctx = ctx
	if basis != nil {
		sol, done, err := s.t.solveWarm(basis)
		if done {
			s.t.foldMetrics()
			return sol, err
		}
		// Stale basis: rebuild the tableau and run the cold two-phase
		// path. The abandoned restoration pivots are wiped with the
		// tableau, so the folded pivot totals keep matching the returned
		// Solution.Iterations.
		if err := s.t.reset(model, &s.opts); err != nil {
			return nil, err
		}
		s.t.ctx = ctx
		s.t.warmMisses = 1
	}
	sol, err := s.t.solve()
	// Fold this solve's local counters into the metrics registry (nil-
	// safe no-op when disabled) — on error paths too, so pivot totals
	// still reconcile when a solve is injected to fail.
	s.t.foldMetrics()
	return sol, err
}

// reuseF64 returns a zeroed float64 slice of length n, reusing s's
// backing array when its capacity suffices.
func reuseF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// reuseI32 returns a zeroed int32 slice of length n, reusing s's
// backing array when its capacity suffices.
func reuseI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// reuseStatus returns a zeroed varStatus slice of length n, reusing s's
// backing array when its capacity suffices.
func reuseStatus(s []varStatus, n int) []varStatus {
	if cap(s) < n {
		return make([]varStatus, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
