package simplex

import (
	"math"
	"math/rand"
	"testing"

	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/obs"
)

// branchLike tightens one variable's bounds the way branch & bound
// would: fix it toward one side of its current optimal value.
func branchLike(m *lp.Model, sol *lp.Solution, rng *rand.Rand) {
	j := rng.Intn(m.NumVars())
	v := m.Var(lp.VarID(j))
	x := sol.X[j]
	if rng.Intn(2) == 0 {
		hi := math.Floor(x)
		if hi < v.Lower {
			hi = v.Lower
		}
		m.SetBounds(lp.VarID(j), v.Lower, hi)
	} else {
		lo := math.Ceil(x)
		if lo > v.Upper {
			lo = v.Upper
		}
		m.SetBounds(lp.VarID(j), lo, v.Upper)
	}
}

// TestWarmSolveFromMatchesCold solves random parent LPs cold, branches
// a bound, and checks that the warm-started child solve agrees with an
// independent cold solve of the same child on status and objective.
func TestWarmSolveFromMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	warmSolves, hits := 0, int64(0)
	for trial := 0; trial < 300; trial++ {
		parent := randomBoxLP(rng)
		warm := NewSolver(nil)
		psol, err := warm.Solve(parent)
		if err != nil {
			t.Fatalf("trial %d: parent solve: %v", trial, err)
		}
		if psol.Status != lp.StatusOptimal {
			continue
		}
		basis := warm.Basis()
		if basis == nil {
			continue
		}
		child := parent.Clone()
		branchLike(child, psol, rng)

		met := obs.NewMetrics()
		warmOpts := Options{Metrics: met}
		ws := NewSolver(&warmOpts)
		got, err := ws.SolveFrom(child, basis)
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		want, err := Solve(child, nil)
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: warm status %v, cold status %v", trial, got.Status, want.Status)
		}
		if got.Status == lp.StatusOptimal {
			if diff := math.Abs(got.Objective - want.Objective); diff > 1e-6*math.Max(1, math.Abs(want.Objective)) {
				t.Fatalf("trial %d: warm objective %v, cold %v (diff %g)", trial, got.Objective, want.Objective, diff)
			}
		}
		warmSolves++
		h, miss := met.Counter(obs.MetricSimplexWarmHits), met.Counter(obs.MetricSimplexWarmMisses)
		if h+miss != 1 {
			t.Fatalf("trial %d: warm_hits %d + warm_misses %d != 1", trial, h, miss)
		}
		if h == 1 && met.Counter(obs.MetricSimplexPhase1Skipped) != 1 {
			t.Fatalf("trial %d: hit without phase1_skipped", trial)
		}
		if h == 1 && met.Counter(obs.MetricSimplexPhase1) != 0 {
			t.Fatalf("trial %d: hit but phase-1 pivots were counted", trial)
		}
		if met.Counter(obs.MetricSimplexPivots) != int64(got.Iterations) {
			t.Fatalf("trial %d: folded pivots %d != solution iterations %d",
				trial, met.Counter(obs.MetricSimplexPivots), got.Iterations)
		}
		hits += h
	}
	if warmSolves < 100 {
		t.Fatalf("only %d warm solves exercised; generator too restrictive", warmSolves)
	}
	if hits == 0 {
		t.Fatal("no warm hits across all trials; warm path never engaged")
	}
}

// TestWarmNilBasisEqualsSolve: SolveFrom with a nil basis must behave
// exactly like Solve, down to the pivot count.
func TestWarmNilBasisEqualsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := randomBoxLP(rng)
		a, err := NewSolver(nil).SolveFrom(m, nil)
		if err != nil {
			t.Fatalf("SolveFrom: %v", err)
		}
		b, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if a.Status != b.Status || a.Iterations != b.Iterations || a.Objective != b.Objective {
			t.Fatalf("trial %d: nil-basis SolveFrom (%v, %d iters, obj %v) != Solve (%v, %d iters, obj %v)",
				trial, a.Status, a.Iterations, a.Objective, b.Status, b.Iterations, b.Objective)
		}
	}
}

// TestWarmResolveSameModelSkipsPhase1: re-solving the very model that
// produced the basis is the ideal warm start — zero restoration work,
// phase 1 skipped, same objective to the bit.
func TestWarmResolveSameModelSkipsPhase1(t *testing.T) {
	m := lp.NewModel("eqge")
	x := m.AddContinuous("x", 0, math.Inf(1), 2)
	y := m.AddContinuous("y", 0, math.Inf(1), 3)
	m.AddRow("sum", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.EQ, 10)
	m.AddRow("diff", []lp.Term{{Var: y, Coef: 1}, {Var: x, Coef: -1}}, lp.GE, 2)

	s := NewSolver(nil)
	cold, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != lp.StatusOptimal {
		t.Fatalf("cold status = %v", cold.Status)
	}
	basis := s.Basis()
	if basis == nil {
		t.Fatal("no basis after optimal solve")
	}

	met := obs.NewMetrics()
	ws := NewSolver(&Options{Metrics: met})
	warm, err := ws.SolveFrom(m, basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != lp.StatusOptimal || warm.Objective != cold.Objective {
		t.Fatalf("warm (%v, %v) != cold (%v, %v)", warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
	if met.Counter(obs.MetricSimplexWarmHits) != 1 {
		t.Fatalf("warm_hits = %d, want 1", met.Counter(obs.MetricSimplexWarmHits))
	}
	if met.Counter(obs.MetricSimplexPhase1Skipped) != 1 {
		t.Fatal("phase1_skipped not recorded")
	}
	if met.Counter(obs.MetricSimplexPhase1) != 0 {
		t.Fatal("phase-1 pivots recorded on a warm hit")
	}
	if warm.Iterations != 0 {
		t.Fatalf("re-solve from own optimal basis took %d pivots, want 0", warm.Iterations)
	}
}

// TestWarmStaleBasisFallsBack: a basis of the wrong shape must be
// rejected and the solve must fall back to the cold path, counted as a
// miss, with the cold answer.
func TestWarmStaleBasisFallsBack(t *testing.T) {
	small := lp.NewModel("small")
	a := small.AddContinuous("a", 0, 2, -1)
	small.AddRow("r", []lp.Term{{Var: a, Coef: 1}}, lp.LE, 1)
	s := NewSolver(nil)
	if _, err := s.Solve(small); err != nil {
		t.Fatal(err)
	}
	stale := s.Basis()
	if stale == nil {
		t.Fatal("no basis from donor model")
	}

	big := lp.NewModel("big")
	x := big.AddContinuous("x", 0, 3, -1)
	y := big.AddContinuous("y", 0, 3, -2)
	big.AddRow("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)

	met := obs.NewMetrics()
	ws := NewSolver(&Options{Metrics: met})
	sol, err := ws.SolveFrom(big, stale)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-7)) > 1e-7 {
		t.Fatalf("fallback result (%v, %v), want optimal -7", sol.Status, sol.Objective)
	}
	if met.Counter(obs.MetricSimplexWarmMisses) != 1 || met.Counter(obs.MetricSimplexWarmHits) != 0 {
		t.Fatalf("warm_misses = %d, warm_hits = %d, want 1/0",
			met.Counter(obs.MetricSimplexWarmMisses), met.Counter(obs.MetricSimplexWarmHits))
	}
}

// TestWarmInfeasibleChild: when the branched child is LP-infeasible the
// warm path cannot prove it — restoration finds no eligible column and
// the cold path must deliver the infeasibility verdict.
func TestWarmInfeasibleChild(t *testing.T) {
	m := lp.NewModel("par")
	x := m.AddContinuous("x", 0, 5, 1)
	y := m.AddContinuous("y", 0, 5, 1)
	m.AddRow("need", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GE, 6)
	s := NewSolver(nil)
	psol, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if psol.Status != lp.StatusOptimal {
		t.Fatalf("parent status = %v", psol.Status)
	}
	basis := s.Basis()

	child := m.Clone()
	child.SetBounds(x, 0, 1)
	child.SetBounds(y, 0, 1) // x+y >= 6 now impossible

	sol, err := NewSolver(nil).SolveFrom(child, basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusInfeasible {
		t.Fatalf("child status = %v, want infeasible", sol.Status)
	}
}

// TestWarmBasisAvailability: Basis must return nil when the last solve
// did not end at an optimal basis.
func TestWarmBasisAvailability(t *testing.T) {
	infeas := lp.NewModel("infeas")
	x := infeas.AddContinuous("x", 0, 5, 1)
	infeas.AddRow("lo", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 10)
	s := NewSolver(nil)
	if _, err := s.Solve(infeas); err != nil {
		t.Fatal(err)
	}
	if s.Basis() != nil {
		t.Fatal("Basis() non-nil after infeasible solve")
	}

	unb := lp.NewModel("unb")
	u := unb.AddContinuous("u", 0, math.Inf(1), -1)
	unb.AddRow("r", []lp.Term{{Var: u, Coef: -1}}, lp.LE, 0)
	if _, err := s.Solve(unb); err != nil {
		t.Fatal(err)
	}
	if s.Basis() != nil {
		t.Fatal("Basis() non-nil after unbounded solve")
	}

	if NewSolver(nil).Basis() != nil {
		t.Fatal("Basis() non-nil before any solve")
	}
}

// TestWarmBasisOutlivesSolver: the snapshot must stay valid after the
// solver that produced it moves on to other models.
func TestWarmBasisOutlivesSolver(t *testing.T) {
	m := lp.NewModel("tiny")
	x := m.AddContinuous("x", 0, 3, -1)
	y := m.AddContinuous("y", 0, 3, -2)
	m.AddRow("cap", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 4)
	s := NewSolver(nil)
	if _, err := s.Solve(m); err != nil {
		t.Fatal(err)
	}
	basis := s.Basis()

	// Churn the donor solver through an unrelated model.
	other := lp.NewModel("other")
	u := other.AddContinuous("u", 0, 9, 1)
	other.AddRow("r", []lp.Term{{Var: u, Coef: 1}}, lp.GE, 2)
	if _, err := s.Solve(other); err != nil {
		t.Fatal(err)
	}

	sol, err := NewSolver(nil).SolveFrom(m, basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || math.Abs(sol.Objective-(-7)) > 1e-7 {
		t.Fatalf("got (%v, %v), want optimal -7", sol.Status, sol.Objective)
	}
	if basis.MemBytes() <= 0 {
		t.Fatal("MemBytes must be positive for a real basis")
	}
}

// TestTryWarmNoColdFallback: TryWarm either solves purely warm —
// matching an independent cold solve — or abandons with ok=false having
// paid only staleness detection. It must never run the hidden two-phase
// cold solve that SolveFrom's miss path charges; the branch & bound dive
// relies on that to keep warm and cold runs' budgets comparable.
func TestTryWarmNoColdFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	warmOK := 0
	for trial := 0; trial < 200; trial++ {
		parent := randomBoxLP(rng)
		ps := NewSolver(nil)
		psol, err := ps.Solve(parent)
		if err != nil {
			t.Fatalf("trial %d: parent solve: %v", trial, err)
		}
		if psol.Status != lp.StatusOptimal {
			continue
		}
		basis := ps.Basis()
		if basis == nil {
			continue
		}
		child := parent.Clone()
		branchLike(child, psol, rng)

		met := obs.NewMetrics()
		ws := NewSolver(&Options{Metrics: met})
		got, ok, err := ws.TryWarm(child, basis)
		if err != nil {
			t.Fatalf("trial %d: TryWarm: %v", trial, err)
		}
		if !ok {
			if got != nil {
				t.Fatalf("trial %d: abandoned warm start still returned a solution", trial)
			}
			if met.Counter(obs.MetricSimplexWarmMisses) != 1 {
				t.Fatalf("trial %d: miss not recorded", trial)
			}
			if met.Counter(obs.MetricSimplexPhase1) != 0 {
				t.Fatalf("trial %d: abandoned warm start ran %d phase-1 pivots (cold fallback)",
					trial, met.Counter(obs.MetricSimplexPhase1))
			}
			continue
		}
		warmOK++
		if met.Counter(obs.MetricSimplexWarmHits) != 1 {
			t.Fatalf("trial %d: successful TryWarm did not record a warm hit", trial)
		}
		want, err := Solve(child, nil)
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: warm status %v, cold status %v", trial, got.Status, want.Status)
		}
		if got.Status == lp.StatusOptimal {
			if diff := math.Abs(got.Objective - want.Objective); diff > 1e-6*math.Max(1, math.Abs(want.Objective)) {
				t.Fatalf("trial %d: warm objective %v, cold %v (diff %g)", trial, got.Objective, want.Objective, diff)
			}
		}
	}
	if warmOK < 50 {
		t.Fatalf("only %d successful warm solves exercised; generator too restrictive", warmOK)
	}
}

// TestTryWarmRejectsForeignAndNilBasis: a nil basis and a basis whose
// shape belongs to a different model must both abandon (ok=false, no
// error) before any pivoting.
func TestTryWarmRejectsForeignAndNilBasis(t *testing.T) {
	tiny := lp.NewModel("tiny")
	tiny.AddContinuous("", 0, 1, -1)
	ts := NewSolver(nil)
	if _, err := ts.Solve(tiny); err != nil {
		t.Fatal(err)
	}
	foreign := ts.Basis()
	if foreign == nil {
		t.Fatal("no basis from the tiny model")
	}

	m := randomBoxLP(rand.New(rand.NewSource(7)))
	met := obs.NewMetrics()
	s := NewSolver(&Options{Metrics: met})
	if sol, ok, err := s.TryWarm(m, foreign); ok || err != nil || sol != nil {
		t.Fatalf("foreign basis: sol=%v ok=%v err=%v, want abandon", sol, ok, err)
	}
	if met.Counter(obs.MetricSimplexPhase1) != 0 {
		t.Fatal("foreign basis triggered phase-1 pivots")
	}
	if sol, ok, err := NewSolver(nil).TryWarm(m, nil); ok || err != nil || sol != nil {
		t.Fatalf("nil basis: sol=%v ok=%v err=%v, want abandon", sol, ok, err)
	}
}
