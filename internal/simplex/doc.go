// Package simplex implements a two-phase bounded-variable revised primal
// simplex solver for the linear programs emitted by the eTransform
// planner. It is the repository's substitute for the CPLEX LP engine used
// in the paper (§V): the planner builds a standard LP/MILP and any exact
// solver — this one, or an external one via the LP-file interchange in
// package lp — produces the same optimum.
//
// Design notes:
//
//   - Every constraint row gets a slack variable (LE: s ∈ [0,∞),
//     GE: s ∈ (−∞,0], EQ: s ∈ [0,0]) so the working system is Ax = b with
//     individual variable bounds.
//   - Phase 1 installs one artificial per row carrying the initial
//     residual, giving a primal-feasible identity basis; minimizing the
//     sum of artificials either reaches zero (proceed to phase 2 on the
//     true costs) or proves infeasibility.
//   - The basis inverse is maintained densely with product-form updates
//     (O(m²) per pivot) and recomputed from scratch on numerical drift.
//   - Pricing is Dantzig (most-negative reduced cost); after a run of
//     degenerate pivots the solver falls back to Bland's rule, which
//     guarantees termination.
//
// Integrality markers on the model are ignored: Solve always solves the
// continuous relaxation. Package milp layers branch & bound on top.
//
// # Invariants
//
//   - Solve never mutates the model it is given; the model may be shared
//     (read-only) between concurrent solves.
//   - Results are deterministic: the same model and options always
//     produce the same pivot sequence, iteration count and solution.
//   - Solve returns a non-nil error only for malformed input or internal
//     numerical failure; infeasible/unbounded/iteration-limit outcomes
//     are reported through Solution.Status.
//
// # Goroutine safety
//
// The package-level Solve function is safe for concurrent use: every
// call builds private working state. A Solver value is NOT goroutine
// safe — it deliberately retains its scratch tableau between calls so
// that hot loops (one branch & bound worker solving thousands of
// same-shaped node LPs) avoid re-allocating the working arrays. Each
// goroutine must own its own Solver; sharing one requires external
// serialization. A Solver holds no reference to any model passed to a
// completed Solve call.
package simplex
