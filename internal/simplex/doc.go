// Package simplex implements a two-phase bounded-variable revised primal
// simplex solver for the linear programs emitted by the eTransform
// planner. It is the repository's substitute for the CPLEX LP engine used
// in the paper (§V): the planner builds a standard LP/MILP and any exact
// solver — this one, or an external one via the LP-file interchange in
// package lp — produces the same optimum.
//
// # The revised simplex loop
//
// The solver never forms a dense tableau. Each iteration works against a
// factorized representation of the basis matrix B:
//
//   - Columns are held in compressed sparse column (CSC) form, built once
//     per solve from the model; a CSR mirror of the same nonzeros serves
//     the pivot-row pass that pricing updates need.
//   - B is factorized as P·B·Q = L·U by a left-looking sparse LU
//     (Gilbert–Peierls: DFS reachability for each column's fill pattern,
//     then a numeric solve in reverse postorder), with Markowitz-style
//     threshold pivoting (tol.Markowitz) and singularity detection
//     (tol.Singular).
//   - Between factorizations, each basis exchange appends a product-form
//     eta vector instead of refactorizing: FTRAN applies B₀⁻¹ then the
//     eta file forward, BTRAN applies the eta file in reverse then B₀⁻ᵀ.
//   - The factorization is rebuilt when the eta file reaches
//     Options.RefactorEvery (default 64) updates, when the periodic drift
//     check finds the relative primal residual ‖b−A·x‖∞ above tol.Drift,
//     or when a pivot column's eligible entries all fall below tol.Pivot
//     (stale-factorization recovery).
//
// Pricing is devex with partial candidate scans: reduced costs are
// maintained across pivots (exactness tracked explicitly, and every
// terminal optimality/unboundedness verdict is re-checked against exactly
// recomputed values), reference weights approximate steepest edge, and
// each iteration scores a retained candidate buffer plus a rotating
// section of the column range rather than every column. After a run of
// degenerate pivots the solver falls back to Bland's rule on exact
// reduced costs, which guarantees termination.
//
// Phase 1 installs one artificial per row carrying the initial residual,
// giving a trivially factorizable feasible basis; minimizing the sum of
// artificials either reaches zero (proceed to phase 2 on the true costs)
// or proves infeasibility.
//
// Options.DenseLA selects the legacy dense-inverse engine (dense basis
// inverse, product-form updates, Dantzig pricing). It is retained as an
// independently implemented reference: the equivalence suites solve every
// LP through both backends and require identical certified outcomes. See
// DESIGN.md, "Sparse linear algebra", for the full contract — data
// layouts, update formulas, the refactorization policy and the exact
// tolerance each guard uses.
//
// Integrality markers on the model are ignored: Solve always solves the
// continuous relaxation. Package milp layers branch & bound on top.
//
// # Invariants
//
//   - Solve never mutates the model it is given; the model may be shared
//     (read-only) between concurrent solves.
//   - Results are deterministic: the same model and options always
//     produce the same pivot sequence, iteration count and solution.
//   - Solve returns a non-nil error only for malformed input or internal
//     numerical failure; infeasible/unbounded/iteration-limit outcomes
//     are reported through Solution.Status.
//
// # Goroutine safety
//
// The package-level Solve function is safe for concurrent use: every
// call builds private working state. A Solver value is NOT goroutine
// safe — it deliberately retains its scratch tableau, factorization and
// eta file between calls so that hot loops (one branch & bound worker
// solving thousands of same-shaped node LPs) avoid re-allocating the
// working arrays. Each goroutine must own its own Solver; sharing one
// requires external serialization. A Solver holds no reference to any
// model passed to a completed Solve call.
package simplex
