// Package tol is the single home of the repository's numerical
// tolerances and the comparison helpers built on them. The simplex,
// branch & bound, presolve, planner and certification layers all route
// their floating-point comparisons through this package so that
//
//   - every tolerance has one named, documented value instead of
//     ad-hoc literals scattered across the solver stack, and
//   - every float comparison states its intent (approximate equality,
//     exact sparsity test, integrality, …), which the etlint
//     floatcmp/toldef analyzers enforce repo-wide.
//
// Tolerance semantics: Feas/Int/Opt are absolute unless the call site
// scales them (helpers ending in Scaled scale by max(1, |a|, |b|)).
// IsZero and Same are *exact* comparisons for use where exact floating
// equality is the intent — skipping stored zeros in sparse data,
// detecting that a value was copied unchanged — and exist so those
// sites are explicit and auditable rather than linted away.
package tol

import "math"

// Named tolerances. Every value here is a deliberate choice; see
// DESIGN.md ("Numerical correctness") for the rationale.
const (
	// Feas is the primal feasibility tolerance: a bound or row is
	// satisfied when violated by no more than Feas (scaled by row
	// magnitude where noted).
	Feas = 1e-6
	// Int is the integrality tolerance: x is integral when within Int
	// of the nearest integer.
	Int = 1e-6
	// Opt is the dual (reduced-cost) optimality tolerance used by
	// simplex pricing.
	Opt = 1e-7
	// Gap is the default relative MILP optimality gap.
	Gap = 1e-6
	// Pivot is the smallest pivot magnitude simplex will divide by.
	Pivot = 1e-9
	// Singular is the partial-pivoting threshold below which a basis
	// matrix is declared singular during refactorization.
	Singular = 1e-12
	// Markowitz is the relative threshold-pivoting tolerance of the
	// sparse LU factorization: a row is stability-acceptable as the
	// pivot of its column when its magnitude is at least Markowitz times
	// the column's largest eliminable magnitude; among acceptable rows
	// the sparsest (fewest basis-matrix nonzeros) is chosen. Larger
	// values favor stability, smaller values favor sparsity; 0.1 is the
	// textbook compromise.
	Markowitz = 0.1
	// Drift is the relative primal-residual bound of the refactorization
	// policy: when ‖b − A·x‖∞ / max(1, ‖b‖∞) exceeds Drift between
	// periodic checks, the eta chain is deemed to have accumulated too
	// much floating-point error and the basis is refactorized. Kept a
	// decade under Feas so drift is repaired before it can masquerade as
	// infeasibility.
	Drift = 1e-7
	// Tie is the strict-improvement epsilon for incumbent updates and
	// most-fractional branching tie-breaks.
	Tie = 1e-12
	// Tighten is the minimum bound improvement presolve and local
	// search count as progress.
	Tighten = 1e-9
	// RowFeas is the per-row infeasibility tolerance presolve uses,
	// scaled by max(1, |rhs|).
	RowFeas = 1e-7
	// Accept is the feasibility tolerance for accepting a rounded MILP
	// incumbent — looser than Feas because the point was solved at
	// simplex precision and then snapped to integers.
	Accept = 1e-5
	// Objective is the relative tolerance for cross-checking the LP
	// objective against the independent plan evaluator.
	Objective = 1e-4
	// Shadow is the smallest dual value reported as a shadow price.
	Shadow = 1e-9
	// CutCoefZero is the cut-separation noise floor: tableau read-back
	// coefficients at or below it are treated as exact zeros, and a
	// knapsack capacity must exceed it to be a usable cover row. Kept
	// well under Feas because a dropped "zero" re-enters the cut as RHS
	// weakening, never as violation.
	CutCoefZero = 1e-11
	// CutIntEps recognizes integral coefficients, bounds and RHS values
	// during Gomory integer-slack rounding; only exactly-modeled
	// integer data should pass, so it sits at simplex pivot precision
	// rather than at Int.
	CutIntEps = 1e-9
	// CutDropRel is the relative (to the largest coefficient) threshold
	// below which post-substitution dust is dropped from a cut, with
	// the mandatory RHS weakening that keeps the cut valid.
	CutDropRel = 1e-12
	// CutViolation is the default minimum violation of the fractional
	// LP point a separated cut must achieve to enter the pool — cuts
	// shallower than this churn the root LP without moving the bound.
	CutViolation = 1e-4
)

// Eq reports |a−b| ≤ eps.
func Eq(a, b, eps float64) bool { return abs(a-b) <= eps }

// EqScaled reports |a−b| ≤ eps·max(1, |a|, |b|).
func EqScaled(a, b, eps float64) bool { return abs(a-b) <= eps*scale(a, b) }

// Leq reports a ≤ b + eps.
func Leq(a, b, eps float64) bool { return a <= b+eps }

// Geq reports a ≥ b − eps.
func Geq(a, b, eps float64) bool { return a >= b-eps }

// LeqScaled reports a ≤ b + eps·max(1, |a|, |b|).
func LeqScaled(a, b, eps float64) bool { return a <= b+eps*scale(a, b) }

// GeqScaled reports a ≥ b − eps·max(1, |a|, |b|).
func GeqScaled(a, b, eps float64) bool { return a >= b-eps*scale(a, b) }

// Pos reports x > eps: strictly positive beyond tolerance.
func Pos(x, eps float64) bool { return x > eps }

// Neg reports x < −eps: strictly negative beyond tolerance.
func Neg(x, eps float64) bool { return x < -eps }

// IsInt reports that x is within eps of its nearest integer.
func IsInt(x, eps float64) bool { return Frac(x) <= eps }

// Frac returns the distance from x to its nearest integer.
func Frac(x float64) float64 { return abs(x - round(x)) }

// Round returns the nearest integer to x (half away from zero).
func Round(x float64) float64 { return math.Round(x) }

// RelGap returns the relative MILP optimality gap between an incumbent
// objective and a proven lower bound:
//
//	(incumbent − bound) / max(1, |incumbent|)
//
// clamped to [0, +Inf]. The max(1, ·) denominator is the repository-wide
// guard for the incumbent-near-zero case: an optimum at or near 0 must
// not inflate the ratio (or divide by zero) and spuriously trip — or
// fail to trip — a gap-limit exit. Non-finite inputs are mapped to the
// honest extremes instead of propagating NaN into termination tests:
// a NaN on either side, an infinite incumbent, or a −Inf bound (no bound
// proven yet) all yield +Inf; a bound at or above the incumbent yields 0
// (the incumbent is proven optimal — tiny negative gaps are floating-
// point noise, not information).
func RelGap(incumbent, bound float64) float64 {
	if math.IsNaN(incumbent) || math.IsNaN(bound) || math.IsInf(incumbent, 0) || math.IsInf(bound, -1) {
		return math.Inf(1)
	}
	g := (incumbent - bound) / math.Max(1, math.Abs(incumbent))
	if g < 0 || math.IsInf(bound, 1) {
		return 0
	}
	return g
}

// IsZero reports x == 0 exactly. Use only where exact floating zero is
// the intent — typically skipping stored zeros in sparse structures,
// where any nonzero (however tiny) must still be processed.
func IsZero(x float64) bool { return x == 0 }

// Same reports a == b exactly (including the usual IEEE caveats: NaN
// is never Same, and ±0 are). Use only where bit-for-bit propagation of
// a value is the intent — e.g. detecting that a bound is unchanged or
// that two bounds came from the same assignment.
func Same(a, b float64) bool { return a == b }

func abs(x float64) float64 { return math.Abs(x) }

func round(x float64) float64 { return math.Round(x) }

func scale(a, b float64) float64 {
	return math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
