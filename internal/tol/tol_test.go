package tol

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-7, 1e-6, true},
		{1, 1 + 1e-5, 1e-6, false},
		{-3, -3.0000005, 1e-6, true},
		{math.NaN(), 1, 1, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b, c.eps); got != c.want {
			t.Errorf("Eq(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestEqScaled(t *testing.T) {
	// 1e6 vs 1e6+0.5: absolute error 0.5 fails at eps=1e-7 unscaled but
	// passes scaled (0.5 ≤ 1e-7·1e6 = 0.1 is false; use a passing pair).
	if !EqScaled(1e9, 1e9+1, 1e-6) {
		t.Error("EqScaled(1e9, 1e9+1, 1e-6) = false, want true")
	}
	if EqScaled(1, 1.1, 1e-6) {
		t.Error("EqScaled(1, 1.1, 1e-6) = true, want false")
	}
}

func TestOrderings(t *testing.T) {
	if !Leq(1.0000001, 1, 1e-6) {
		t.Error("Leq within eps failed")
	}
	if Leq(1.1, 1, 1e-6) {
		t.Error("Leq beyond eps passed")
	}
	if !Geq(0.9999999, 1, 1e-6) {
		t.Error("Geq within eps failed")
	}
	if Geq(0.9, 1, 1e-6) {
		t.Error("Geq beyond eps passed")
	}
	if !LeqScaled(1e9+100, 1e9, 1e-6) {
		t.Error("LeqScaled within scaled eps failed")
	}
	if !GeqScaled(1e9-100, 1e9, 1e-6) {
		t.Error("GeqScaled within scaled eps failed")
	}
	if !Pos(0.1, 1e-6) || Pos(1e-9, 1e-6) {
		t.Error("Pos misclassifies")
	}
	if !Neg(-0.1, 1e-6) || Neg(-1e-9, 1e-6) {
		t.Error("Neg misclassifies")
	}
}

func TestIntegrality(t *testing.T) {
	if !IsInt(3.0000004, Int) {
		t.Error("IsInt near-integer failed")
	}
	if IsInt(3.4, Int) {
		t.Error("IsInt fractional passed")
	}
	if got := Frac(2.75); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("Frac(2.75) = %v, want 0.25", got)
	}
	if got := Round(-1.5); !Same(got, -2) {
		t.Errorf("Round(-1.5) = %v, want -2 (half away from zero)", got)
	}
}

func TestExactComparisons(t *testing.T) {
	if !IsZero(0.0) || IsZero(1e-300) {
		t.Error("IsZero must be exact")
	}
	if !Same(0.5, 0.5) || Same(0.5, 0.5+1e-16) {
		t.Error("Same must be exact")
	}
	if Same(math.NaN(), math.NaN()) {
		t.Error("Same(NaN, NaN) must be false")
	}
}
