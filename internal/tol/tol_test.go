package tol

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-7, 1e-6, true},
		{1, 1 + 1e-5, 1e-6, false},
		{-3, -3.0000005, 1e-6, true},
		{math.NaN(), 1, 1, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b, c.eps); got != c.want {
			t.Errorf("Eq(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestEqScaled(t *testing.T) {
	// 1e6 vs 1e6+0.5: absolute error 0.5 fails at eps=1e-7 unscaled but
	// passes scaled (0.5 ≤ 1e-7·1e6 = 0.1 is false; use a passing pair).
	if !EqScaled(1e9, 1e9+1, 1e-6) {
		t.Error("EqScaled(1e9, 1e9+1, 1e-6) = false, want true")
	}
	if EqScaled(1, 1.1, 1e-6) {
		t.Error("EqScaled(1, 1.1, 1e-6) = true, want false")
	}
}

func TestOrderings(t *testing.T) {
	if !Leq(1.0000001, 1, 1e-6) {
		t.Error("Leq within eps failed")
	}
	if Leq(1.1, 1, 1e-6) {
		t.Error("Leq beyond eps passed")
	}
	if !Geq(0.9999999, 1, 1e-6) {
		t.Error("Geq within eps failed")
	}
	if Geq(0.9, 1, 1e-6) {
		t.Error("Geq beyond eps passed")
	}
	if !LeqScaled(1e9+100, 1e9, 1e-6) {
		t.Error("LeqScaled within scaled eps failed")
	}
	if !GeqScaled(1e9-100, 1e9, 1e-6) {
		t.Error("GeqScaled within scaled eps failed")
	}
	if !Pos(0.1, 1e-6) || Pos(1e-9, 1e-6) {
		t.Error("Pos misclassifies")
	}
	if !Neg(-0.1, 1e-6) || Neg(-1e-9, 1e-6) {
		t.Error("Neg misclassifies")
	}
}

func TestIntegrality(t *testing.T) {
	if !IsInt(3.0000004, Int) {
		t.Error("IsInt near-integer failed")
	}
	if IsInt(3.4, Int) {
		t.Error("IsInt fractional passed")
	}
	if got := Frac(2.75); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("Frac(2.75) = %v, want 0.25", got)
	}
	if got := Round(-1.5); !Same(got, -2) {
		t.Errorf("Round(-1.5) = %v, want -2 (half away from zero)", got)
	}
}

func TestExactComparisons(t *testing.T) {
	if !IsZero(0.0) || IsZero(1e-300) {
		t.Error("IsZero must be exact")
	}
	if !Same(0.5, 0.5) || Same(0.5, 0.5+1e-16) {
		t.Error("Same must be exact")
	}
	if Same(math.NaN(), math.NaN()) {
		t.Error("Same(NaN, NaN) must be false")
	}
}

func TestRelGap(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name       string
		inc, bound float64
		want       float64
	}{
		{"plain", 110, 100, 10.0 / 110},
		{"negative-objectives", -90, -100, 10.0 / 90},
		{"zero-incumbent", 0, -0.5, 0.5},           // max(1,·) guard: no division blow-up
		{"tiny-incumbent", 1e-9, -0.5, 0.5 + 1e-9}, // denominator clamps to 1
		{"proved", 100, 100, 0},
		{"bound-overshoot", 100, 100 + 1e-9, 0}, // float noise above the incumbent: gap 0
		{"no-bound-yet", 100, math.Inf(-1), inf},
		{"inf-bound", 100, inf, 0},
		{"nan-incumbent", math.NaN(), 0, inf},
		{"nan-bound", 100, math.NaN(), inf},
		{"inf-incumbent", inf, 0, inf},
	}
	for _, tc := range cases {
		got := RelGap(tc.inc, tc.bound)
		if math.IsInf(tc.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("%s: RelGap(%v, %v) = %v, want +Inf", tc.name, tc.inc, tc.bound, got)
			}
			continue
		}
		if math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("%s: RelGap(%v, %v) = %v, want %v", tc.name, tc.inc, tc.bound, got, tc.want)
		}
		if got < 0 || math.IsNaN(got) {
			t.Errorf("%s: RelGap returned %v; must be nonnegative and not NaN", tc.name, got)
		}
	}
}
