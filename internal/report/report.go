// Package report renders plans, cost breakdowns, tables and ASCII charts
// for the eTransform CLI tools and the experiment harness — the output
// generation subroutine of the paper's architecture (Figure 5).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/etransform/etransform/internal/model"
)

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// Bar is one bar of a stacked horizontal chart.
type Bar struct {
	Label    string
	Segments []Segment
}

// Segment is one stacked component of a bar.
type Segment struct {
	Name  string
	Value float64
}

func (b Bar) total() float64 {
	t := 0.0
	for _, s := range b.Segments {
		t += s.Value
	}
	return t
}

// BarChart renders a stacked horizontal ASCII bar chart, the textual
// analogue of the paper's Figure 4/6 cost bars.
func BarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	maxTotal := 0.0
	labelW := 0
	for _, b := range bars {
		if t := b.total(); t > maxTotal {
			maxTotal = t
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	glyphs := []byte{'#', '+', '.', 'o', '*'}
	for _, b := range bars {
		fmt.Fprintf(&sb, "  %-*s |", labelW, b.Label)
		drawn := 0
		if maxTotal > 0 {
			for si, seg := range b.Segments {
				n := int(math.Round(seg.Value / maxTotal * float64(width)))
				if n > 0 {
					sb.Write(bytesRepeat(glyphs[si%len(glyphs)], n))
					drawn += n
				}
			}
		}
		fmt.Fprintf(&sb, "%s %s\n", strings.Repeat(" ", maxInt(0, width+1-drawn)), Money(b.total()))
	}
	// Legend.
	if len(bars) > 0 && len(bars[0].Segments) > 1 {
		sb.WriteString("  legend:")
		for si, seg := range bars[0].Segments {
			fmt.Fprintf(&sb, " %c=%s", glyphs[si%len(glyphs)], seg.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Money renders a dollar amount compactly ($1.23M style).
func Money(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("$%.2fB", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("$%.2fM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("$%.1fk", v/1e3)
	default:
		return fmt.Sprintf("$%.0f", v)
	}
}

// Percent renders a signed percentage.
func Percent(v float64) string {
	return fmt.Sprintf("%+.0f%%", v*100)
}

// CostBars converts labelled breakdowns into Figure 4/6-style bars with
// an operational-cost segment and a latency-penalty segment.
func CostBars(labels []string, breakdowns []model.CostBreakdown) []Bar {
	bars := make([]Bar, len(labels))
	for i := range labels {
		b := breakdowns[i]
		bars[i] = Bar{
			Label: labels[i],
			Segments: []Segment{
				{Name: "cost", Value: b.OperationalCost() + b.BackupCapital},
				{Name: "latency penalty", Value: b.Latency},
			},
		}
	}
	return bars
}

// PlanReport renders a human-readable to-be report for a plan.
func PlanReport(s *model.AsIsState, p *model.Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "to-be plan for %s\n", s.Name)
	fmt.Fprintf(&sb, "  model: %d rows × %d cols (%d integral), %d B&B nodes, gap %.2g\n",
		p.Stats.Rows, p.Stats.Cols, p.Stats.Integral, p.Stats.Nodes, p.Stats.Gap)
	fmt.Fprintf(&sb, "  cost: %s/month (op %s, latency penalty %s, backup capital %s)\n",
		Money(p.Cost.Total()), Money(p.Cost.OperationalCost()), Money(p.Cost.Latency), Money(p.Cost.BackupCapital))
	fmt.Fprintf(&sb, "  data centers used: %d, latency violations: %d\n", p.Cost.DCsUsed, p.Cost.LatencyViolations)

	ids := make([]string, 0, len(p.Cost.PerDC))
	for id := range p.Cost.PerDC {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rows := make([][]string, 0, len(ids))
	for _, id := range ids {
		c := p.Cost.PerDC[id]
		rows = append(rows, []string{
			id,
			strconv.Itoa(c.Servers),
			strconv.Itoa(c.BackupServers),
			Money(c.Space), Money(c.Power), Money(c.Labor), Money(c.WAN), Money(c.Latency),
			Money(c.Total()),
		})
	}
	sb.WriteString(Table(
		[]string{"data center", "servers", "backups", "space", "power", "labor", "wan", "latency", "total"},
		rows))
	return sb.String()
}

// WriteCSV writes headers and rows as CSV.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flushing CSV: %w", err)
	}
	return nil
}

// Series is one line of a sweep chart (Figure 7/8-style).
type Series struct {
	Name   string
	Points []float64
}

// SweepTable renders a sweep as a table: one row per x value, one column
// per series.
func SweepTable(xName string, xs []float64, series []Series) string {
	headers := make([]string, 0, len(series)+1)
	headers = append(headers, xName)
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, len(xs))
	for i, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, trimFloat(x))
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, trimFloat(s.Points[i]))
			} else {
				row = append(row, "")
			}
		}
		rows[i] = row
	}
	return Table(headers, rows)
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
