package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/model"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "bbbb"}, [][]string{{"xxx", "y"}, {"z", "wwwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	w := len(lines[0])
	for i, l := range lines[1:] {
		if len(l) > w+2 {
			t.Errorf("row %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
}

func TestBarChart(t *testing.T) {
	bars := []Bar{
		{Label: "AS-IS", Segments: []Segment{{"cost", 100}, {"latency penalty", 50}}},
		{Label: "ETRANSFORM", Segments: []Segment{{"cost", 40}, {"latency penalty", 0}}},
	}
	out := BarChart("Cost for various solutions", bars, 40)
	if !strings.Contains(out, "AS-IS") || !strings.Contains(out, "ETRANSFORM") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Errorf("legend missing:\n%s", out)
	}
	// The larger bar should contain more glyphs.
	lines := strings.Split(out, "\n")
	count := func(s string) int { return strings.Count(s, "#") + strings.Count(s, "+") }
	if count(lines[1]) <= count(lines[2]) {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("empty", []Bar{{Label: "x", Segments: []Segment{{"cost", 0}}}}, 20)
	if !strings.Contains(out, "$0") {
		t.Errorf("zero bar mishandled:\n%s", out)
	}
}

func TestMoney(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{12, "$12"},
		{1234, "$1.2k"},
		{2.5e6, "$2.50M"},
		{3.1e9, "$3.10B"},
	}
	for _, tt := range cases {
		if got := Money(tt.v); got != tt.want {
			t.Errorf("Money(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(-0.43); got != "-43%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(0.37); got != "+37%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestCostBars(t *testing.T) {
	bds := []model.CostBreakdown{
		{Space: 100, Power: 20, Labor: 30, WAN: 10, Latency: 99},
	}
	bars := CostBars([]string{"X"}, bds)
	if bars[0].Segments[0].Value != 160 || bars[0].Segments[1].Value != 99 {
		t.Errorf("bars = %+v", bars[0])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4,x"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a,b\n1,2\n") || !strings.Contains(out, `"4,x"`) {
		t.Errorf("csv = %q", out)
	}
}

func TestSweepTable(t *testing.T) {
	out := SweepTable("penalty", []float64{0, 50, 100}, []Series{
		{Name: "total", Points: []float64{10, 20, 30}},
		{Name: "space", Points: []float64{5, 15}},
	})
	if !strings.Contains(out, "penalty") || !strings.Contains(out, "total") {
		t.Fatalf("headers missing:\n%s", out)
	}
	if !strings.Contains(out, "50") || !strings.Contains(out, "30") {
		t.Errorf("values missing:\n%s", out)
	}
}

func TestPlanReport(t *testing.T) {
	p := &model.Plan{
		Cost: model.CostBreakdown{
			Space: 10, Power: 5, Labor: 3, WAN: 2, Latency: 1,
			DCsUsed: 1, LatencyViolations: 1,
			PerDC: map[string]model.DCCost{
				"t1": {Servers: 12, Space: 10, Power: 5, Labor: 3, WAN: 2, Latency: 1},
			},
		},
		Stats: model.SolveStats{Rows: 3, Cols: 4, Integral: 4},
	}
	s := &model.AsIsState{Name: "demo"}
	out := PlanReport(s, p)
	for _, want := range []string{"demo", "t1", "servers", "violations: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
