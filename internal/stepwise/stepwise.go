// Package stepwise models piecewise-linear cost curves: volume-discount
// (economies-of-scale) pricing for data center resources and step-function
// latency penalties.
//
// The paper (§III-B) represents each data center cost as a function of the
// quantity purchased and incorporates the resulting step functions into
// the linear program following Schoomer's technique. This package is the
// curve substrate: it validates, evaluates, and exposes the segment
// structure that the LP builder encodes with segment binaries.
package stepwise

import (
	"fmt"
	"math"
	"sort"

	"github.com/etransform/etransform/internal/tol"
)

// Segment is one tier of an incremental (tiered) price curve: the first
// Width units beyond the previous tiers each cost UnitCost.
type Segment struct {
	// Width is the quantity covered by this tier. The final segment of a
	// curve may have Width = +Inf to cover unbounded quantity.
	Width float64 `json:"width"`
	// UnitCost is the price per unit within this tier.
	UnitCost float64 `json:"unit_cost"`
}

// Curve is an incremental tiered price curve. Unit k's price is the
// UnitCost of the tier containing k. The zero value is a free curve
// (cost 0 everywhere); construct non-trivial curves with NewCurve, Flat,
// or VolumeDiscount.
type Curve struct {
	segments []Segment
}

// NewCurve validates the segments and builds a Curve. Segment widths must
// be positive; only the final segment may be infinite; unit costs must be
// finite and non-negative.
func NewCurve(segments []Segment) (Curve, error) {
	for i, s := range segments {
		if s.Width <= 0 || math.IsNaN(s.Width) {
			return Curve{}, fmt.Errorf("stepwise: segment %d has non-positive width %v", i, s.Width)
		}
		if math.IsInf(s.Width, 1) && i != len(segments)-1 {
			return Curve{}, fmt.Errorf("stepwise: only the final segment may be unbounded (segment %d)", i)
		}
		if s.UnitCost < 0 || math.IsNaN(s.UnitCost) || math.IsInf(s.UnitCost, 0) {
			return Curve{}, fmt.Errorf("stepwise: segment %d has invalid unit cost %v", i, s.UnitCost)
		}
	}
	c := Curve{segments: make([]Segment, len(segments))}
	copy(c.segments, segments)
	return c, nil
}

// Flat returns a single-tier curve pricing every unit at unitCost.
func Flat(unitCost float64) Curve {
	c, err := NewCurve([]Segment{{Width: math.Inf(1), UnitCost: unitCost}})
	if err != nil {
		// Only reachable through an invalid unitCost; surface loudly.
		panic(fmt.Sprintf("stepwise: Flat(%v): %v", unitCost, err))
	}
	return c
}

// VolumeDiscount builds the paper's economies-of-scale curve: the first
// tierSize units cost baseUnit each, and each subsequent tier of tierSize
// units costs decrement less per unit, never dropping below floorUnit.
// The final tier is unbounded. numTiers counts the distinct price levels
// including the base tier.
func VolumeDiscount(baseUnit, tierSize, decrement, floorUnit float64, numTiers int) (Curve, error) {
	if numTiers < 1 {
		return Curve{}, fmt.Errorf("stepwise: numTiers must be ≥ 1, got %d", numTiers)
	}
	if tierSize <= 0 {
		return Curve{}, fmt.Errorf("stepwise: tierSize must be positive, got %v", tierSize)
	}
	if decrement < 0 {
		return Curve{}, fmt.Errorf("stepwise: decrement must be non-negative, got %v", decrement)
	}
	if floorUnit < 0 || floorUnit > baseUnit {
		return Curve{}, fmt.Errorf("stepwise: floorUnit %v must lie in [0, baseUnit=%v]", floorUnit, baseUnit)
	}
	segs := make([]Segment, 0, numTiers)
	for k := 0; k < numTiers; k++ {
		unit := baseUnit - float64(k)*decrement
		if unit < floorUnit {
			unit = floorUnit
		}
		w := tierSize
		if k == numTiers-1 {
			w = math.Inf(1)
		}
		segs = append(segs, Segment{Width: w, UnitCost: unit})
	}
	return NewCurve(segs)
}

// Segments returns a copy of the curve's tiers. An empty result means the
// curve is free.
func (c Curve) Segments() []Segment {
	out := make([]Segment, len(c.segments))
	copy(out, c.segments)
	return out
}

// IsFlat reports whether the curve has a single price level (including the
// zero-value free curve).
func (c Curve) IsFlat() bool {
	if len(c.segments) <= 1 {
		return true
	}
	first := c.segments[0].UnitCost
	for _, s := range c.segments[1:] {
		if !tol.Same(s.UnitCost, first) {
			return false
		}
	}
	return true
}

// IsConcave reports whether total cost is concave in quantity, i.e. unit
// costs are non-increasing across tiers. Concave curves require binary
// segment-ordering variables in an LP encoding; convex ones do not.
func (c Curve) IsConcave() bool {
	for i := 1; i < len(c.segments); i++ {
		if c.segments[i].UnitCost > c.segments[i-1].UnitCost {
			return false
		}
	}
	return true
}

// IsConvex reports whether total cost is convex in quantity, i.e. unit
// costs are non-decreasing across tiers. Convex curves can be encoded in
// an LP without binaries: the minimizer fills cheap tiers first on its
// own.
func (c Curve) IsConvex() bool {
	for i := 1; i < len(c.segments); i++ {
		if c.segments[i].UnitCost < c.segments[i-1].UnitCost {
			return false
		}
	}
	return true
}

// SegmentsUpTo returns finite-width segments that price quantities in
// [0, cap] exactly as Eval does: the final tier (or, for all-finite
// curves, an extension at the last price) is truncated or stretched to
// end at cap. An empty result means the curve is free or cap is 0.
func (c Curve) SegmentsUpTo(cap float64) []Segment {
	if cap <= 0 || len(c.segments) == 0 {
		return nil
	}
	var out []Segment
	covered := 0.0
	for _, s := range c.segments {
		if covered >= cap {
			break
		}
		w := math.Min(s.Width, cap-covered)
		out = append(out, Segment{Width: w, UnitCost: s.UnitCost})
		covered += w
	}
	if covered < cap {
		// All-finite curve shorter than cap: extend at the final price,
		// merging with the last tier since the price is identical.
		out[len(out)-1].Width += cap - covered
	}
	return out
}

// UnitCostAt returns the marginal price of the unit at quantity q (0-based
// within the curve: the q-th unit purchased). Quantities beyond all finite
// tiers price at the final tier.
func (c Curve) UnitCostAt(q float64) float64 {
	if len(c.segments) == 0 {
		return 0
	}
	rem := q
	for _, s := range c.segments {
		if rem < s.Width {
			return s.UnitCost
		}
		rem -= s.Width
	}
	return c.segments[len(c.segments)-1].UnitCost
}

// Eval returns the total cost of purchasing quantity q under incremental
// tiered pricing. Negative q is an error.
func (c Curve) Eval(q float64) (float64, error) {
	if q < 0 || math.IsNaN(q) {
		return 0, fmt.Errorf("stepwise: cannot evaluate at quantity %v", q)
	}
	total := 0.0
	rem := q
	for _, s := range c.segments {
		if rem <= 0 {
			break
		}
		take := math.Min(rem, s.Width)
		total += take * s.UnitCost
		rem -= take
	}
	if rem > 0 && len(c.segments) > 0 {
		// Beyond the final finite tier: extend at the last price.
		total += rem * c.segments[len(c.segments)-1].UnitCost
	}
	return total, nil
}

// MustEval is Eval for known-valid quantities; it panics on error. Use in
// tests and internal code where q ≥ 0 is guaranteed.
func (c Curve) MustEval(q float64) float64 {
	v, err := c.Eval(q)
	if err != nil {
		panic(err)
	}
	return v
}

// PenaltyStep is one step of a latency penalty function: if average
// latency strictly exceeds ThresholdMs, the application pays PenaltyPerUser
// for every user (the largest exceeded threshold applies).
type PenaltyStep struct {
	ThresholdMs    float64 `json:"threshold_ms"`
	PenaltyPerUser float64 `json:"penalty_per_user"`
}

// LatencyPenalty is a step function from average latency to per-user
// penalty, as specified per application group in §III-B ("a penalty of
// $10 per user be added if the average latency > 10ms"). The zero value
// imposes no penalty (a latency-insensitive application).
type LatencyPenalty struct {
	steps []PenaltyStep
}

// NewLatencyPenalty validates and builds a penalty function. Thresholds
// must be non-negative and strictly increasing after sorting is applied;
// penalties must be non-negative and non-decreasing with threshold (a
// higher latency can never cost less).
func NewLatencyPenalty(steps []PenaltyStep) (LatencyPenalty, error) {
	sorted := make([]PenaltyStep, len(steps))
	copy(sorted, steps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ThresholdMs < sorted[j].ThresholdMs })
	for i, s := range sorted {
		if s.ThresholdMs < 0 || math.IsNaN(s.ThresholdMs) || math.IsInf(s.ThresholdMs, 0) {
			return LatencyPenalty{}, fmt.Errorf("stepwise: invalid threshold %v", s.ThresholdMs)
		}
		if s.PenaltyPerUser < 0 || math.IsNaN(s.PenaltyPerUser) || math.IsInf(s.PenaltyPerUser, 0) {
			return LatencyPenalty{}, fmt.Errorf("stepwise: invalid penalty %v", s.PenaltyPerUser)
		}
		if i > 0 {
			if tol.Same(s.ThresholdMs, sorted[i-1].ThresholdMs) {
				return LatencyPenalty{}, fmt.Errorf("stepwise: duplicate threshold %v", s.ThresholdMs)
			}
			if s.PenaltyPerUser < sorted[i-1].PenaltyPerUser {
				return LatencyPenalty{}, fmt.Errorf("stepwise: penalty must be non-decreasing in threshold (%v at %vms < %v at %vms)",
					s.PenaltyPerUser, s.ThresholdMs, sorted[i-1].PenaltyPerUser, sorted[i-1].ThresholdMs)
			}
		}
	}
	return LatencyPenalty{steps: sorted}, nil
}

// SingleThreshold is the common §VI-B form: penaltyPerUser is charged for
// every user when average latency exceeds thresholdMs.
func SingleThreshold(thresholdMs, penaltyPerUser float64) (LatencyPenalty, error) {
	return NewLatencyPenalty([]PenaltyStep{{ThresholdMs: thresholdMs, PenaltyPerUser: penaltyPerUser}})
}

// PerUser returns the penalty charged per user at the given average
// latency: the penalty of the largest strictly-exceeded threshold, or 0.
func (p LatencyPenalty) PerUser(avgLatencyMs float64) float64 {
	pen := 0.0
	for _, s := range p.steps {
		if avgLatencyMs > s.ThresholdMs {
			pen = s.PenaltyPerUser
		} else {
			break
		}
	}
	return pen
}

// IsZero reports whether the function never charges a penalty.
func (p LatencyPenalty) IsZero() bool {
	for _, s := range p.steps {
		if s.PenaltyPerUser > 0 {
			return false
		}
	}
	return true
}

// Steps returns a copy of the (sorted) steps.
func (p LatencyPenalty) Steps() []PenaltyStep {
	out := make([]PenaltyStep, len(p.steps))
	copy(out, p.steps)
	return out
}
