package stepwise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCurveValidation(t *testing.T) {
	tests := []struct {
		name string
		segs []Segment
		ok   bool
	}{
		{"empty", nil, true},
		{"single-finite", []Segment{{Width: 10, UnitCost: 5}}, true},
		{"single-infinite", []Segment{{Width: math.Inf(1), UnitCost: 5}}, true},
		{"two-tier", []Segment{{Width: 10, UnitCost: 5}, {Width: math.Inf(1), UnitCost: 3}}, true},
		{"zero-width", []Segment{{Width: 0, UnitCost: 5}}, false},
		{"negative-width", []Segment{{Width: -1, UnitCost: 5}}, false},
		{"inf-not-last", []Segment{{Width: math.Inf(1), UnitCost: 5}, {Width: 1, UnitCost: 3}}, false},
		{"negative-cost", []Segment{{Width: 1, UnitCost: -3}}, false},
		{"nan-cost", []Segment{{Width: 1, UnitCost: math.NaN()}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCurve(tt.segs)
			if tt.ok != (err == nil) {
				t.Fatalf("NewCurve err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestCurveEval(t *testing.T) {
	c, err := NewCurve([]Segment{
		{Width: 10, UnitCost: 5},
		{Width: 10, UnitCost: 4},
		{Width: math.Inf(1), UnitCost: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		q, want float64
	}{
		{0, 0},
		{1, 5},
		{10, 50},
		{15, 50 + 20},
		{20, 50 + 40},
		{25, 50 + 40 + 10},
	}
	for _, tt := range tests {
		got, err := c.Eval(tt.q)
		if err != nil {
			t.Fatalf("Eval(%v): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := c.Eval(-1); err == nil {
		t.Error("Eval(-1) succeeded, want error")
	}
}

func TestCurveEvalBeyondFiniteTiers(t *testing.T) {
	// All-finite curve: quantities past the end extend at the last price.
	c, err := NewCurve([]Segment{{Width: 5, UnitCost: 10}, {Width: 5, UnitCost: 6}})
	if err != nil {
		t.Fatal(err)
	}
	got := c.MustEval(12)
	want := 5*10.0 + 5*6.0 + 2*6.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Eval(12) = %v, want %v", got, want)
	}
}

func TestFlatCurve(t *testing.T) {
	c := Flat(7)
	if !c.IsFlat() || !c.IsConcave() {
		t.Error("Flat curve should be flat and concave")
	}
	if got := c.MustEval(13); got != 91 {
		t.Errorf("Eval(13) = %v, want 91", got)
	}
	if got := c.UnitCostAt(1000); got != 7 {
		t.Errorf("UnitCostAt = %v, want 7", got)
	}
}

func TestZeroCurveIsFree(t *testing.T) {
	var c Curve
	if got := c.MustEval(100); got != 0 {
		t.Errorf("zero curve Eval = %v, want 0", got)
	}
	if got := c.UnitCostAt(5); got != 0 {
		t.Errorf("zero curve UnitCostAt = %v, want 0", got)
	}
	if !c.IsFlat() || !c.IsConcave() {
		t.Error("zero curve should be flat and concave")
	}
}

func TestVolumeDiscount(t *testing.T) {
	c, err := VolumeDiscount(100, 50, 10, 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	segs := c.Segments()
	if len(segs) != 6 {
		t.Fatalf("got %d segments, want 6", len(segs))
	}
	wantCosts := []float64{100, 90, 80, 70, 60, 60} // floor clamps tier 6 (would be 50)
	for i, s := range segs {
		if s.UnitCost != wantCosts[i] {
			t.Errorf("segment %d unit cost = %v, want %v", i, s.UnitCost, wantCosts[i])
		}
	}
	if !math.IsInf(segs[5].Width, 1) {
		t.Error("final segment should be unbounded")
	}
	if !c.IsConcave() {
		t.Error("volume discount curve must be concave")
	}
	// 120 units: 50@100 + 50@90 + 20@80.
	if got, want := c.MustEval(120), 50*100.0+50*90.0+20*80.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Eval(120) = %v, want %v", got, want)
	}
}

func TestVolumeDiscountValidation(t *testing.T) {
	cases := []struct {
		name                                 string
		base, tierSize, decrement, floorUnit float64
		tiers                                int
	}{
		{"zero-tiers", 100, 50, 10, 0, 0},
		{"zero-tier-size", 100, 0, 10, 0, 3},
		{"negative-decrement", 100, 50, -1, 0, 3},
		{"floor-above-base", 100, 50, 10, 200, 3},
		{"negative-floor", 100, 50, 10, -5, 3},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := VolumeDiscount(tt.base, tt.tierSize, tt.decrement, tt.floorUnit, tt.tiers); err == nil {
				t.Error("VolumeDiscount succeeded, want error")
			}
		})
	}
}

func TestIsConcaveConvexCurve(t *testing.T) {
	c, err := NewCurve([]Segment{{Width: 5, UnitCost: 1}, {Width: math.Inf(1), UnitCost: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if c.IsConcave() {
		t.Error("increasing unit costs reported concave")
	}
	if c.IsFlat() {
		t.Error("two-price curve reported flat")
	}
}

// Property: Eval is non-decreasing and its marginal matches UnitCostAt.
func TestCurveEvalMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &quick.Config{Rand: rng}
	f := func(rawWidths [3]uint8, rawCosts [3]uint8, q1, q2 uint16) bool {
		segs := make([]Segment, 0, 3)
		for i := 0; i < 3; i++ {
			w := float64(rawWidths[i]%50) + 1
			if i == 2 {
				w = math.Inf(1)
			}
			segs = append(segs, Segment{Width: w, UnitCost: float64(rawCosts[i] % 100)})
		}
		c, err := NewCurve(segs)
		if err != nil {
			return false
		}
		a, b := float64(q1%500), float64(q2%500)
		if a > b {
			a, b = b, a
		}
		ea, eb := c.MustEval(a), c.MustEval(b)
		if eb < ea-1e-9 {
			return false
		}
		// Marginal check: derivative at integer q equals UnitCostAt(q).
		q := math.Floor(a)
		marginal := c.MustEval(q+1) - c.MustEval(q)
		return math.Abs(marginal-c.UnitCostAt(q)) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIsConvex(t *testing.T) {
	concave, _ := NewCurve([]Segment{{Width: 5, UnitCost: 10}, {Width: math.Inf(1), UnitCost: 5}})
	convex, _ := NewCurve([]Segment{{Width: 5, UnitCost: 5}, {Width: math.Inf(1), UnitCost: 10}})
	if concave.IsConvex() {
		t.Error("decreasing prices reported convex")
	}
	if !convex.IsConvex() || !Flat(3).IsConvex() || !(Curve{}).IsConvex() {
		t.Error("convex/flat/zero curves misclassified")
	}
}

func TestSegmentsUpTo(t *testing.T) {
	c, err := NewCurve([]Segment{{Width: 10, UnitCost: 9}, {Width: 10, UnitCost: 7}, {Width: math.Inf(1), UnitCost: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Capped inside tier 2.
	segs := c.SegmentsUpTo(15)
	if len(segs) != 2 || segs[0].Width != 10 || segs[1].Width != 5 {
		t.Fatalf("segs = %+v", segs)
	}
	// Capped beyond all finite tiers: infinite tier truncated.
	segs = c.SegmentsUpTo(100)
	if len(segs) != 3 || segs[2].Width != 80 {
		t.Fatalf("segs = %+v", segs)
	}
	// Total of SegmentsUpTo-priced cap equals Eval(cap).
	total := 0.0
	for _, s := range segs {
		total += s.Width * s.UnitCost
	}
	if want := c.MustEval(100); math.Abs(total-want) > 1e-9 {
		t.Errorf("segment total %v != Eval %v", total, want)
	}
	// All-finite curve stretched at final price.
	fin, _ := NewCurve([]Segment{{Width: 5, UnitCost: 9}, {Width: 5, UnitCost: 7}})
	segs = fin.SegmentsUpTo(20)
	if len(segs) != 2 || segs[1].Width != 15 {
		t.Fatalf("stretched segs = %+v", segs)
	}
	if got := (Curve{}).SegmentsUpTo(10); got != nil {
		t.Errorf("zero curve segments = %+v", got)
	}
	if got := Flat(2).SegmentsUpTo(0); got != nil {
		t.Errorf("cap-0 segments = %+v", got)
	}
}

func TestLatencyPenalty(t *testing.T) {
	p, err := NewLatencyPenalty([]PenaltyStep{
		{ThresholdMs: 10, PenaltyPerUser: 100},
		{ThresholdMs: 50, PenaltyPerUser: 250},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		lat, want float64
	}{
		{0, 0}, {10, 0}, {10.01, 100}, {50, 100}, {51, 250}, {1000, 250},
	}
	for _, tt := range tests {
		if got := p.PerUser(tt.lat); got != tt.want {
			t.Errorf("PerUser(%v) = %v, want %v", tt.lat, got, tt.want)
		}
	}
	if p.IsZero() {
		t.Error("non-trivial penalty reported zero")
	}
}

func TestLatencyPenaltySortsSteps(t *testing.T) {
	p, err := NewLatencyPenalty([]PenaltyStep{
		{ThresholdMs: 50, PenaltyPerUser: 250},
		{ThresholdMs: 10, PenaltyPerUser: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := p.Steps()
	if steps[0].ThresholdMs != 10 || steps[1].ThresholdMs != 50 {
		t.Errorf("steps not sorted: %+v", steps)
	}
	if got := p.PerUser(20); got != 100 {
		t.Errorf("PerUser(20) = %v, want 100", got)
	}
}

func TestLatencyPenaltyValidation(t *testing.T) {
	cases := []struct {
		name  string
		steps []PenaltyStep
	}{
		{"negative-threshold", []PenaltyStep{{ThresholdMs: -1, PenaltyPerUser: 1}}},
		{"negative-penalty", []PenaltyStep{{ThresholdMs: 1, PenaltyPerUser: -1}}},
		{"duplicate-threshold", []PenaltyStep{{ThresholdMs: 5, PenaltyPerUser: 1}, {ThresholdMs: 5, PenaltyPerUser: 2}}},
		{"decreasing-penalty", []PenaltyStep{{ThresholdMs: 5, PenaltyPerUser: 10}, {ThresholdMs: 9, PenaltyPerUser: 5}}},
		{"inf-threshold", []PenaltyStep{{ThresholdMs: math.Inf(1), PenaltyPerUser: 1}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewLatencyPenalty(tt.steps); err == nil {
				t.Error("NewLatencyPenalty succeeded, want error")
			}
		})
	}
}

func TestSingleThreshold(t *testing.T) {
	p, err := SingleThreshold(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PerUser(11); got != 100 {
		t.Errorf("PerUser(11) = %v, want 100", got)
	}
	if got := p.PerUser(9); got != 0 {
		t.Errorf("PerUser(9) = %v, want 0", got)
	}
}

func TestZeroLatencyPenalty(t *testing.T) {
	var p LatencyPenalty
	if !p.IsZero() {
		t.Error("zero value should be zero penalty")
	}
	if got := p.PerUser(1e9); got != 0 {
		t.Errorf("PerUser = %v, want 0", got)
	}
}
