package stepwise

import (
	"encoding/json"
	"math"
	"testing"
)

func TestCurveJSONRoundTrip(t *testing.T) {
	orig, err := NewCurve([]Segment{
		{Width: 100, UnitCost: 50},
		{Width: math.Inf(1), UnitCost: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	a, b := orig.Segments(), back.Segments()
	if len(a) != len(b) {
		t.Fatalf("segments %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].UnitCost != b[i].UnitCost {
			t.Errorf("segment %d cost %v vs %v", i, a[i].UnitCost, b[i].UnitCost)
		}
		if a[i].Width != b[i].Width && !(math.IsInf(a[i].Width, 1) && math.IsInf(b[i].Width, 1)) {
			t.Errorf("segment %d width %v vs %v", i, a[i].Width, b[i].Width)
		}
	}
}

func TestCurveJSONZeroValue(t *testing.T) {
	var c Curve
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Segments()) != 0 {
		t.Errorf("zero curve round-trip has %d segments", len(back.Segments()))
	}
}

func TestCurveJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"segments":[{"width":-1,"unit_cost":2}]}`,
		`{"segments":[{"width":"huge","unit_cost":2}]}`,
		`{"segments":[{"width":true,"unit_cost":2}]}`,
		`{"segments":[{"width":"inf","unit_cost":2},{"width":1,"unit_cost":2}]}`,
	}
	for _, src := range cases {
		var c Curve
		if err := json.Unmarshal([]byte(src), &c); err == nil {
			t.Errorf("unmarshal %s succeeded, want error", src)
		}
	}
}

func TestLatencyPenaltyJSONRoundTrip(t *testing.T) {
	orig, err := SingleThreshold(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencyPenalty
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.PerUser(11); got != 100 {
		t.Errorf("PerUser after round-trip = %v, want 100", got)
	}
	if got := back.PerUser(9); got != 0 {
		t.Errorf("PerUser(9) = %v, want 0", got)
	}
}

func TestLatencyPenaltyJSONRejectsInvalid(t *testing.T) {
	var p LatencyPenalty
	if err := json.Unmarshal([]byte(`{"steps":[{"threshold_ms":-2,"penalty_per_user":1}]}`), &p); err == nil {
		t.Error("invalid penalty accepted")
	}
}
