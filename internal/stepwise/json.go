package stepwise

import (
	"encoding/json"
	"fmt"
	"math"
)

// jsonSegment mirrors Segment but encodes an infinite width as the string
// "inf", since JSON has no literal for infinity.
type jsonSegment struct {
	Width    any     `json:"width"`
	UnitCost float64 `json:"unit_cost"`
}

// MarshalJSON implements json.Marshaler.
func (c Curve) MarshalJSON() ([]byte, error) {
	segs := make([]jsonSegment, len(c.segments))
	for i, s := range c.segments {
		js := jsonSegment{UnitCost: s.UnitCost}
		if math.IsInf(s.Width, 1) {
			js.Width = "inf"
		} else {
			js.Width = s.Width
		}
		segs[i] = js
	}
	return json.Marshal(struct {
		Segments []jsonSegment `json:"segments"`
	}{segs})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Curve) UnmarshalJSON(data []byte) error {
	var raw struct {
		Segments []jsonSegment `json:"segments"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	segs := make([]Segment, len(raw.Segments))
	for i, js := range raw.Segments {
		switch w := js.Width.(type) {
		case float64:
			segs[i].Width = w
		case string:
			if w != "inf" {
				return fmt.Errorf("stepwise: segment %d: unknown width %q", i, w)
			}
			segs[i].Width = math.Inf(1)
		default:
			return fmt.Errorf("stepwise: segment %d: width must be a number or \"inf\"", i)
		}
		segs[i].UnitCost = js.UnitCost
	}
	parsed, err := NewCurve(segs)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// MarshalJSON implements json.Marshaler. A zero-value function encodes
// as "steps": [] — not null — so that encode∘decode is idempotent
// (UnmarshalJSON always rebuilds a non-nil slice) and content hashes of
// a state don't depend on whether it passed through JSON before.
func (p LatencyPenalty) MarshalJSON() ([]byte, error) {
	steps := p.steps
	if steps == nil {
		steps = []PenaltyStep{}
	}
	return json.Marshal(struct {
		Steps []PenaltyStep `json:"steps"`
	}{steps})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *LatencyPenalty) UnmarshalJSON(data []byte) error {
	var raw struct {
		Steps []PenaltyStep `json:"steps"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	parsed, err := NewLatencyPenalty(raw.Steps)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
