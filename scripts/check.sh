#!/bin/sh
# check.sh — the repository's full static + dynamic gate:
#
#   1. go vet      standard toolchain checks
#   2. etlint      repo-specific analyzers (floatcmp, toldef, nopanic)
#   3. audit       nopanic exemptions must match the reviewed allowlist
#                  (scripts/nopanic_exemptions.txt); worker panics must
#                  convert to coordinator errors, not earn new markers
#   4. go test     full suite under the race detector
#   5. milp race   the parallel branch & bound, twice, under -race
#
# Run from anywhere; it operates on the repo root. Exits non-zero on the
# first failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> etlint ./..."
go run ./cmd/etlint ./...

echo "==> etlint -nopanic-exemptions (audit against scripts/nopanic_exemptions.txt)"
go run ./cmd/etlint -nopanic-exemptions ./... > /tmp/nopanic_exemptions.$$ || {
    rm -f /tmp/nopanic_exemptions.$$; exit 1; }
if ! diff -u scripts/nopanic_exemptions.txt /tmp/nopanic_exemptions.$$; then
    rm -f /tmp/nopanic_exemptions.$$
    echo "nopanic exemption set changed: review the new invariant-violation" >&2
    echo "helpers and update scripts/nopanic_exemptions.txt deliberately." >&2
    exit 1
fi
rm -f /tmp/nopanic_exemptions.$$

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race -count=2 ./internal/milp/..."
go test -race -count=2 ./internal/milp/...

echo "==> all checks passed"
