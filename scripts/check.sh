#!/bin/sh
# check.sh — the repository's full static + dynamic gate:
#
#   1. go vet      standard toolchain checks
#   2. etlint      repo-specific analyzers (floatcmp, toldef, nopanic)
#   3. go test     full suite under the race detector
#
# Run from anywhere; it operates on the repo root. Exits non-zero on the
# first failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> etlint ./..."
go run ./cmd/etlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> all checks passed"
