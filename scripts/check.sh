#!/bin/sh
# check.sh — the repository's full static + dynamic gate:
#
#   1. go vet      standard toolchain checks
#   2. etlint      repo-specific analyzers (floatcmp, toldef, nopanic,
#                  ctxfirst, maporder, lockguard, stickyerr); the same
#                  pass writes the nopanic exemption audit, which must
#                  match the reviewed allowlist
#                  (scripts/nopanic_exemptions.txt) — worker panics must
#                  convert to coordinator errors, not earn new markers
#   4. go test     full suite under the race detector
#   5. milp race   the parallel branch & bound, twice, under -race
#   6. warm/cold   the warm-start equivalence suite (simplex SolveFrom
#                  plus the milp ReuseBasis property tests), under -race:
#                  warm and cold solves must agree on certified
#                  objective, status and limit label
#   7. obs cover   internal/obs must hold >= 70% statement coverage —
#                  the observability layer is what every other number in
#                  a trace or metrics file is trusted against
#   8. bench lock  every docs/benchmarks/BENCH_*.json must strict-parse
#                  against the etransform-bench/v1 schema (etbench
#                  -validate) — the perf trajectory is part of the
#                  reviewed surface, not a scratch directory
#   9. output lock the golden-plan and metamorphic suites, explicitly:
#                  byte-stable plan JSON + certified-objective invariance
#  10. fault smoke each injectable fault class forced against a small
#                  dataset end to end: the planner must exit 0 (recovered)
#                  or 3 (degraded-but-feasible), never crash; a corrupted
#                  standalone solve must fail cleanly with exit 1
#  11. robust smoke a fixed-seed Monte Carlo robustness batch, run twice
#                  at different -workers values: the two
#                  etransform-robust/v1 reports must be byte-identical
#                  (the replay contract) and strict-parse via etbench
#                  -validate
#  12. cut validity the 16-seed subset of the cut-validity property
#                  suite (no separated cut may eliminate an enumerated
#                  integer-feasible point) plus a short fuzz pass over
#                  both separators
#  13. cut/kernel determinism smoke: one -cuts -kernel planner solve at
#                  -workers 1 and 4 must produce the identical plan cost
#                  block (cuts and the kernel run in the sequential root
#                  phase, so worker count must not leak into the answer)
#  14. etserve smoke: boot the planning daemon on a random port, submit
#                  the smoke state over HTTP, poll to done, fetch the
#                  plan and compare it to the etransform CLI's plan for
#                  the same state — byte-equal after dropping the two
#                  wall-clock fields — then resubmit the same state and
#                  require a cache hit (serve.cache_hits counter)
#
# Run from anywhere; it operates on the repo root. Exits non-zero on the
# first failing stage.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> etlint ./... (lint + nopanic exemption audit, single pass)"
go run ./cmd/etlint -exemptions-out /tmp/nopanic_exemptions.$$ ./... || {
    rm -f /tmp/nopanic_exemptions.$$; exit 1; }
if ! diff -u scripts/nopanic_exemptions.txt /tmp/nopanic_exemptions.$$; then
    rm -f /tmp/nopanic_exemptions.$$
    echo "nopanic exemption set changed: review the new invariant-violation" >&2
    echo "helpers and update scripts/nopanic_exemptions.txt deliberately." >&2
    exit 1
fi
rm -f /tmp/nopanic_exemptions.$$

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race -count=2 ./internal/milp/..."
go test -race -count=2 ./internal/milp/...

echo "==> warm/cold equivalence suite (-race)"
go test -race -run 'Warm|GapZero' ./internal/simplex ./internal/milp

echo "==> internal/obs coverage floor (70%)"
cover=$(go test -cover ./internal/obs | awk '{for (i=1;i<=NF;i++) if ($i ~ /%$/) {sub(/%/,"",$i); print $i}}')
if [ -z "$cover" ]; then
    echo "could not parse internal/obs coverage" >&2
    exit 1
fi
if ! awk -v c="$cover" 'BEGIN { exit !(c >= 70.0) }'; then
    echo "internal/obs coverage ${cover}% is below the 70% floor" >&2
    exit 1
fi
echo "    internal/obs coverage: ${cover}%"

echo "==> bench report schema validation (docs/benchmarks)"
go run ./cmd/etbench -validate docs/benchmarks

echo "==> golden plan + metamorphic output locks"
go test ./cmd/etransform -run TestGoldenPlans
go test ./internal/core -run 'TestMetamorphic(CostScaling|IndexPermutation|DominatedDC)'

echo "==> fault-injection smoke matrix"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
go build -o "$SMOKE_DIR/etransform" ./cmd/etransform
go build -o "$SMOKE_DIR/lpsolve" ./cmd/lpsolve
go run ./cmd/etdatagen -dataset enterprise1 -scale 0.05 -o "$SMOKE_DIR/asis.json"

# Every fault class, forced persistently against the planner: the
# resilient pipeline must deliver a plan — exit 0 (retry recovered) or
# exit 3 (degraded-but-feasible via budget surrender or fallback stage).
for spec in pivotxall corruptxall stallxall panicxall deadlinexall; do
    rc=0
    "$SMOKE_DIR/etransform" -state "$SMOKE_DIR/asis.json" -report=false \
        -faults "$spec" -timelimit 60s > "$SMOKE_DIR/out.txt" 2>&1 || rc=$?
    case $rc in
    0|3) echo "    etransform -faults $spec: exit $rc (ok)" ;;
    *)
        echo "etransform -faults $spec: exit $rc, want 0 or 3" >&2
        cat "$SMOKE_DIR/out.txt" >&2
        exit 1
        ;;
    esac
done

# The standalone solver has no fallback chain: a persistently corrupted
# solve must fail cleanly (exit 1), never report a bogus optimum.
cat > "$SMOKE_DIR/m.lp" <<'EOF'
Minimize
 obj: -1 x - 2 y
Subject To
 c: x + y <= 4
Bounds
 0 <= x <= 3
 0 <= y <= 3
End
EOF
rc=0
"$SMOKE_DIR/lpsolve" -faults corruptxall "$SMOKE_DIR/m.lp" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "lpsolve -faults corruptxall: exit $rc, want 1" >&2
    exit 1
fi
rc=0
"$SMOKE_DIR/lpsolve" "$SMOKE_DIR/m.lp" > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "lpsolve (clean): exit $rc, want 0" >&2
    exit 1
fi

echo "==> robustness determinism smoke"
# One fixed-seed batch at two worker counts: the replay contract says
# the JSON reports must match byte for byte, and both must strict-parse.
"$SMOKE_DIR/etransform" -state "$SMOKE_DIR/asis.json" -report=false \
    -robust scripts/robust_smoke.json -samples 6 -seed 42 -workers 2 \
    -robust-out "$SMOKE_DIR/ROBUST_1.json" > /dev/null
"$SMOKE_DIR/etransform" -state "$SMOKE_DIR/asis.json" -report=false \
    -robust scripts/robust_smoke.json -samples 6 -seed 42 -workers 1 \
    -robust-out "$SMOKE_DIR/ROBUST_2.json" > /dev/null
if ! cmp -s "$SMOKE_DIR/ROBUST_1.json" "$SMOKE_DIR/ROBUST_2.json"; then
    echo "robustness reports differ across -workers values (replay contract broken):" >&2
    diff "$SMOKE_DIR/ROBUST_1.json" "$SMOKE_DIR/ROBUST_2.json" >&2 || true
    exit 1
fi
go run ./cmd/etbench -validate "$SMOKE_DIR"
echo "    robust batch byte-stable at -workers 1 vs 2"

echo "==> cut validity smoke (16-seed subset + short fuzz)"
go test -run 'TestCutValiditySmoke16|TestCoverDegenerateRows' ./internal/milp/cuts
go test -run '^$' -fuzz FuzzGomoryRow -fuzztime 5s ./internal/milp/cuts
go test -run '^$' -fuzz FuzzCoverSeparation -fuzztime 5s ./internal/milp/cuts

echo "==> cut/kernel determinism smoke (-workers 1 vs 4)"
# Cuts and the kernel heuristic run in the sequential root phase, so the
# certified plan — in particular its full cost breakdown — must be
# identical at any worker count.
"$SMOKE_DIR/etransform" -state "$SMOKE_DIR/asis.json" -report=false \
    -cuts -kernel -workers 1 -plan "$SMOKE_DIR/plan_w1.json" > /dev/null
"$SMOKE_DIR/etransform" -state "$SMOKE_DIR/asis.json" -report=false \
    -cuts -kernel -workers 4 -plan "$SMOKE_DIR/plan_w4.json" > /dev/null
jq .cost "$SMOKE_DIR/plan_w1.json" > "$SMOKE_DIR/cost_w1.json"
jq .cost "$SMOKE_DIR/plan_w4.json" > "$SMOKE_DIR/cost_w4.json"
if ! cmp -s "$SMOKE_DIR/cost_w1.json" "$SMOKE_DIR/cost_w4.json"; then
    echo "cuts+kernel plan cost differs across -workers values:" >&2
    diff "$SMOKE_DIR/cost_w1.json" "$SMOKE_DIR/cost_w4.json" >&2 || true
    exit 1
fi
echo "    cuts+kernel plan cost identical at -workers 1 vs 4"

echo "==> etserve service smoke (submit -> poll -> plan parity + cache hit)"
go build -o "$SMOKE_DIR/etserve" ./cmd/etserve
# Random port; -workers 1 for a deterministic solve matching the CLI run.
"$SMOKE_DIR/etserve" -addr 127.0.0.1:0 -workers 1 \
    > "$SMOKE_DIR/etserve.log" 2>&1 &
ETSERVE_PID=$!
trap 'kill "$ETSERVE_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's#^etserve listening on ##p' "$SMOKE_DIR/etserve.log")
    [ -n "$base" ] && break
    if ! kill -0 "$ETSERVE_PID" 2>/dev/null; then
        echo "etserve exited before listening:" >&2
        cat "$SMOKE_DIR/etserve.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "etserve never printed its listen address" >&2
    cat "$SMOKE_DIR/etserve.log" >&2
    exit 1
fi
job=$(curl -sf -X POST --data-binary @"$SMOKE_DIR/asis.json" "$base/v1/plans" \
    | jq -r .id)
state=""
for _ in $(seq 1 600); do
    state=$(curl -sf "$base/v1/plans/$job" | jq -r .state)
    case $state in done|degraded|failed) break ;; esac
    sleep 0.2
done
if [ "$state" != "done" ]; then
    echo "etserve job $job ended in state \"$state\", want done" >&2
    curl -s "$base/v1/plans/$job" >&2 || true
    exit 1
fi
curl -sf "$base/v1/plans/$job/plan" > "$SMOKE_DIR/serve_plan.json"
"$SMOKE_DIR/etransform" -state "$SMOKE_DIR/asis.json" -report=false \
    -workers 1 -plan "$SMOKE_DIR/cli_plan.json" > /dev/null
# The two wall-clock stats are the only machine-dependent bytes.
norm='del(.stats.wall_millis, .stats.work_millis)'
jq "$norm" "$SMOKE_DIR/serve_plan.json" > "$SMOKE_DIR/serve_plan.norm.json"
jq "$norm" "$SMOKE_DIR/cli_plan.json" > "$SMOKE_DIR/cli_plan.norm.json"
if ! cmp -s "$SMOKE_DIR/serve_plan.norm.json" "$SMOKE_DIR/cli_plan.norm.json"; then
    echo "etserve plan differs from the etransform CLI plan:" >&2
    diff "$SMOKE_DIR/serve_plan.norm.json" "$SMOKE_DIR/cli_plan.norm.json" >&2 || true
    exit 1
fi
echo "    serve plan byte-identical to CLI plan (modulo wall-clock stats)"
# An identical resubmission must be answered from the content-hash cache.
if ! curl -sf -X POST --data-binary @"$SMOKE_DIR/asis.json" "$base/v1/plans" \
    | jq -e '.cached == true and .state == "done"' > /dev/null; then
    echo "identical resubmission was not served from the cache" >&2
    exit 1
fi
hits=$(curl -sf "$base/v1/metrics" | jq '.counters["serve.cache_hits"] // 0')
if [ "$hits" -lt 1 ]; then
    echo "serve.cache_hits is $hits after a cache-hit resubmission, want >= 1" >&2
    exit 1
fi
echo "    cache hit on resubmission (serve.cache_hits=$hits)"
kill "$ETSERVE_PID" 2>/dev/null || true
wait "$ETSERVE_PID" 2>/dev/null || true
trap 'rm -rf "$SMOKE_DIR"' EXIT

echo "==> all checks passed"
