#!/bin/sh
# bench.sh — regenerate the checked-in benchmark artifacts:
#
#   docs/benchmarks/etbench_bench.txt   human-readable: the full etbench
#                                       run at -scale bench (x0.25
#                                       datasets), the source of the
#                                       README's Performance table
#   docs/benchmarks/BENCH_<n>.json      machine-readable: schema
#                                       etransform-bench/v1 (obs.BenchReport),
#                                       one record per case-study solve,
#                                       each dataset solved cold and again
#                                       with warm-started node LPs (the
#                                       "+warm" scenarios carry warm_hits /
#                                       warm_misses / phase1_skipped).
#                                       <n> is one past the highest
#                                       BENCH_*.json already checked in,
#                                       so each PR's run lands in a fresh
#                                       file; override with BENCH_PR=<n>.
#
# Usage:
#
#   scripts/bench.sh [extra etbench flags...]
#
# Extra flags pass straight through to etbench, e.g.
#   scripts/bench.sh -sweep-workers 1 -workers 1   # sequential baseline
# The artifact header records the flags, Go version, CPU count and date
# so numbers in the repo are never context-free.
set -eu

cd "$(dirname "$0")/.."

out=docs/benchmarks/etbench_bench.txt
mkdir -p docs/benchmarks

# Derive the artifact number from what is already checked in (max + 1),
# so the script never silently overwrites a prior PR's trajectory point.
if [ -z "${BENCH_PR:-}" ]; then
    last=0
    for f in docs/benchmarks/BENCH_*.json; do
        [ -e "$f" ] || continue
        n=${f#docs/benchmarks/BENCH_}
        n=${n%.json}
        case $n in
        *[!0-9]*) continue ;;
        esac
        [ "$n" -gt "$last" ] && last=$n
    done
    BENCH_PR=$((last + 1))
fi
json=docs/benchmarks/BENCH_$BENCH_PR.json

# No pipe into tee here: POSIX sh has no pipefail, so `etbench | tee`
# would let a failed run still move half-written artifacts into place.
if ! {
    echo "# etbench -scale bench $*"
    echo "# $(go version)"
    echo "# CPUs: $(getconf _NPROCESSORS_ONLN)"
    echo "# date: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
    echo
    go run ./cmd/etbench -scale bench -json "$json.tmp" -json-pr "$BENCH_PR" "$@"
} > "$out.tmp" 2>&1; then
    cat "$out.tmp" >&2
    rm -f "$out.tmp" "$json.tmp"
    echo "etbench failed; artifacts left untouched" >&2
    exit 1
fi
cat "$out.tmp"
mv "$out.tmp" "$out"
mv "$json.tmp" "$json"
echo "wrote $out"
echo "wrote $json"
