#!/bin/sh
# bench.sh — regenerate the checked-in benchmark artifacts:
#
#   docs/benchmarks/etbench_bench.txt   human-readable: the full etbench
#                                       run at -scale bench (x0.25
#                                       datasets), the source of the
#                                       README's Performance table
#   docs/benchmarks/BENCH_4.json        machine-readable: schema
#                                       etransform-bench/v1 (obs.BenchReport),
#                                       one record per case-study solve
#
# Usage:
#
#   scripts/bench.sh [extra etbench flags...]
#
# Extra flags pass straight through to etbench, e.g.
#   scripts/bench.sh -sweep-workers 1 -workers 1   # sequential baseline
# The artifact header records the flags, Go version, CPU count and date
# so numbers in the repo are never context-free.
set -eu

cd "$(dirname "$0")/.."

out=docs/benchmarks/etbench_bench.txt
json=docs/benchmarks/BENCH_4.json
mkdir -p docs/benchmarks

{
    echo "# etbench -scale bench $*"
    echo "# $(go version)"
    echo "# CPUs: $(getconf _NPROCESSORS_ONLN)"
    echo "# date: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
    echo
    go run ./cmd/etbench -scale bench -json "$json.tmp" -json-pr 4 "$@"
} | tee "$out.tmp"
mv "$out.tmp" "$out"
mv "$json.tmp" "$json"
echo "wrote $out"
echo "wrote $json"
