#!/bin/sh
# bench.sh — regenerate the checked-in benchmark artifact
# docs/benchmarks/etbench_bench.txt: the full etbench run at -scale
# bench (x0.25 datasets), the source of the README's Performance table.
#
# Usage:
#
#   scripts/bench.sh [extra etbench flags...]
#
# Extra flags pass straight through to etbench, e.g.
#   scripts/bench.sh -sweep-workers 1 -workers 1   # sequential baseline
# The artifact header records the flags, Go version, CPU count and date
# so numbers in the repo are never context-free.
set -eu

cd "$(dirname "$0")/.."

out=docs/benchmarks/etbench_bench.txt
mkdir -p docs/benchmarks

{
    echo "# etbench -scale bench $*"
    echo "# $(go version)"
    echo "# CPUs: $(getconf _NPROCESSORS_ONLN)"
    echo "# date: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
    echo
    go run ./cmd/etbench -scale bench "$@"
} | tee "$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out"
