module github.com/etransform/etransform

go 1.23
