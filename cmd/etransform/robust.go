package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/report"
	"github.com/etransform/etransform/internal/robust"
)

// robustFlags carries the -robust mode's flag values into runRobust.
type robustFlags struct {
	specPath  string
	samples   int
	seed      int64
	cvar      float64
	workers   int
	faults    string
	faultSeed int64
	reportOut string
	planOut   string
	show      bool
}

// runRobust executes a Monte Carlo robustness batch: N sampled scenarios
// under the uncertainty spec, the nominal plan's regret distribution,
// per-decision flip rates, and the robustness-ranked plan selection. The
// report written to -robust-out is a pure function of (state, spec,
// -seed, -samples, -cvar) — timing goes to stdout only — so reruns at
// any -workers value produce byte-identical files. Exit code 3 keeps its
// meaning: the nominal reference plan itself was degraded.
func runRobust(state *model.AsIsState, coreOpts core.Options, rf robustFlags) (degraded bool, err error) {
	spec, err := model.LoadUncertaintySpec(rf.specPath)
	if err != nil {
		return false, err
	}
	start := time.Now()
	res, err := robust.Run(context.Background(), state, spec, robust.Options{
		Samples:   rf.samples,
		Seed:      rf.seed,
		Workers:   rf.workers,
		CVaRAlpha: rf.cvar,
		Faults:    rf.faults,
		FaultSeed: rf.faultSeed,
		Planner:   coreOpts,
	})
	if err != nil {
		return false, err
	}
	elapsed := time.Since(start)
	r := res.Report

	if rf.show {
		printRobustReport(r, elapsed)
	}
	degraded = printDegradation(res.Nominal.Stats.Degradation)

	if rf.reportOut != "" {
		f, err := os.Create(rf.reportOut)
		if err != nil {
			return degraded, err
		}
		if err := obs.WriteRobustReport(f, r); err != nil {
			f.Close()
			return degraded, err
		}
		if err := f.Close(); err != nil {
			return degraded, err
		}
		fmt.Printf("wrote robustness report to %s\n", rf.reportOut)
	}
	if rf.planOut != "" {
		f, err := os.Create(rf.planOut)
		if err != nil {
			return degraded, err
		}
		if err := model.WritePlan(f, res.Chosen); err != nil {
			f.Close()
			return degraded, err
		}
		if err := f.Close(); err != nil {
			return degraded, err
		}
		fmt.Printf("wrote robustness-ranked plan to %s\n", rf.planOut)
	}
	return degraded, nil
}

// printRobustReport renders the batch summary for humans; the JSON
// report stays the machine interface.
func printRobustReport(r *obs.RobustReport, elapsed time.Duration) {
	fmt.Printf("robustness batch: %s, %d samples, seed %d, cvar alpha %.2f\n",
		r.Dataset, r.Samples, r.Seed, r.CVaRAlpha)
	fmt.Printf("  samples: %d solved, %d excluded (%d degraded)\n",
		r.SamplesSolved, r.SamplesExcluded, r.SamplesDegraded)
	for i, ex := range r.Excluded {
		if i == 5 {
			fmt.Printf("    ... and %d more excluded samples (see the JSON report)\n", len(r.Excluded)-i)
			break
		}
		stage := ex.Stage
		if stage == "" {
			stage = "solve"
		}
		fmt.Printf("    sample %d excluded at %s: %s\n", ex.Index, stage, ex.Reason)
	}
	fmt.Printf("  nominal plan cost %s/month\n", report.Money(r.NominalCost))
	if r.Regret != nil {
		fmt.Printf("  nominal regret over %d samples: mean %s  p50 %s  p90 %s  cvar %s  worst %s\n",
			r.Regret.Count, report.Money(r.Regret.Mean), report.Money(r.Regret.P50),
			report.Money(r.Regret.P90), report.Money(r.Regret.CVaR), report.Money(r.Regret.Max))
	}
	if len(r.Flips) == 0 {
		fmt.Println("  assignment stability: no group changed its optimal site in any sample")
	} else {
		fmt.Printf("  assignment stability: %d groups flip across samples\n", len(r.Flips))
		for i, fl := range r.Flips {
			if i == 5 {
				fmt.Printf("    ... and %d more (see the JSON report)\n", len(r.Flips)-i)
				break
			}
			alt := ""
			if len(fl.Alternatives) > 0 {
				alt = fmt.Sprintf(" -> %s in %d", fl.Alternatives[0].DC, fl.Alternatives[0].Count)
			}
			fmt.Printf("    %-12s flips off %s in %.0f%% of samples%s\n",
				fl.GroupID, fl.NominalDC, 100*fl.FlipRate, alt)
		}
	}
	fmt.Printf("  ranked plans (%d candidates):\n", len(r.Plans))
	for i, p := range r.Plans {
		if i == 5 {
			fmt.Printf("    ... and %d more (see the JSON report)\n", len(r.Plans)-i)
			break
		}
		mark := " "
		if p.Chosen {
			mark = "*"
		}
		fmt.Printf("  %s %d. %s (%s, optimal in %d samples): cost %s  E[regret] %s  cvar %s\n",
			mark, i+1, p.Signature, p.Source, p.SampleCount, report.Money(p.NominalCost),
			report.Money(p.ExpectedRegret), report.Money(p.CVaRRegret))
	}
	chosen := r.Plans[0]
	for _, p := range r.Plans {
		if p.Chosen {
			chosen = p
		}
	}
	fmt.Printf("  chosen plan %s, certified: %s\n", r.Chosen, chosen.Certificate)
	fmt.Printf("batch completed in %v\n", elapsed.Round(time.Millisecond))
}
