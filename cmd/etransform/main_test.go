package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/model"
)

func writeTestState(t *testing.T) string {
	t.Helper()
	cfg := datagen.Enterprise1().Scaled(0.1)
	s, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "asis.json")
	if err := model.SaveState(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPlan(t *testing.T) {
	state := writeTestState(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	if _, err := run([]string{"-state", state, "-plan", planPath, "-report=false", "-timelimit", "30s"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := model.ReadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) == 0 {
		t.Error("empty plan written")
	}
}

func TestRunLPExport(t *testing.T) {
	state := writeTestState(t)
	lpPath := filepath.Join(t.TempDir(), "m.lp")
	mpsPath := filepath.Join(t.TempDir(), "m.mps")
	if _, err := run([]string{"-state", state, "-lp", lpPath, "-mps", mpsPath}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{lpPath, mpsPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", p)
		}
	}
	if data, _ := os.ReadFile(mpsPath); !strings.Contains(string(data), "ENDATA") {
		t.Error("MPS export missing ENDATA")
	}
}

func TestRunPinForbid(t *testing.T) {
	state := writeTestState(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	_, err := run([]string{"-state", state, "-plan", planPath, "-report=false",
		"-pin", "ag-0000=target-3", "-timelimit", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := model.ReadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.AssignmentFor("ag-0000").PrimaryDC; got != "target-3" {
		t.Errorf("pinned group at %q", got)
	}
}

// TestRunFaultsDegraded: forcing every simplex pivot to fail defeats the
// exact stage; the CLI must still write a plan from a fallback stage and
// report it as degraded (exit code 3 path).
func TestRunFaultsDegraded(t *testing.T) {
	state := writeTestState(t)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	degraded, err := run([]string{"-state", state, "-plan", planPath, "-report=false",
		"-faults", "pivotxall", "-timelimit", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Error("fault-forced fallback plan not reported degraded")
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := model.ReadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Stats.Degradation
	if d == nil || !d.Degraded || d.Stage == "" || d.Reason == "" {
		t.Errorf("written plan lacks a degradation report: %+v", d)
	}
	if _, err := run([]string{"-state", state, "-faults", "bogus-kind"}); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run([]string{}); err == nil {
		t.Error("missing -state accepted")
	}
	if _, err := run([]string{"-state", "/nonexistent.json"}); err == nil {
		t.Error("missing file accepted")
	}
	state := writeTestState(t)
	if _, err := run([]string{"-state", state, "-formulation", "bogus"}); err == nil {
		t.Error("bad formulation accepted")
	}
	if _, err := run([]string{"-state", state, "-pin", "nonsense"}); err == nil {
		t.Error("malformed pin accepted")
	}
	if _, err := run([]string{"-state", state, "-pin", "nope=target-0", "-report=false"}); err == nil {
		t.Error("unknown pin group accepted")
	}
}

func TestSplitPair(t *testing.T) {
	if g, d, err := splitPair("a=b"); err != nil || g != "a" || d != "b" {
		t.Errorf("splitPair = %q %q %v", g, d, err)
	}
	for _, bad := range []string{"", "=x", "x=", "nope"} {
		if _, _, err := splitPair(bad); err == nil {
			t.Errorf("splitPair(%q) accepted", bad)
		}
	}
}
