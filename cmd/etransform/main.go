// Command etransform generates a transformation and consolidation plan
// for an enterprise IT estate: it reads an "as-is" state (JSON), builds
// the consolidation MILP — optionally with an integrated disaster
// recovery plan — solves it, and emits the "to-be" plan and a cost
// report.
//
// Usage:
//
//	etransform -state asis.json [flags]
//
// Typical invocations:
//
//	etransform -state asis.json -report
//	etransform -state asis.json -dr -omega 0.4 -plan tobe.json
//	etransform -state asis.json -lp model.lp        # export for CPLEX
//	etransform -state asis.json -pin ag-0012=target-3 -forbid ag-0040=target-1
//	etransform -state asis.json -workers 1 -trace solve.jsonl -metrics m.json
//	etransform -state asis.json -robust spec.json -samples 500 -seed 7 -robust-out r.json
//
// With -robust the command runs a Monte Carlo robustness batch instead
// of a single solve: the as-is inputs are perturbed -samples times under
// the uncertainty spec (internal/model, "etransform-uncertainty/v1"),
// every scenario is solved to a certified optimum, and the report
// captures the nominal plan's regret distribution, per-decision flip
// rates, and a robustness-ranked plan selection by CVaR(-cvar) regret.
// The JSON report (-robust-out) is byte-identical for one (state, spec,
// -seed, -samples, -cvar) tuple at any -workers value; -plan then writes
// the robustness-ranked choice instead of the nominal plan.
//
// Observability (all off by default, zero cost when off): -trace streams
// structured solve events as JSONL (byte-stable across runs at
// -workers 1); -metrics writes the solve metrics snapshot JSON and
// embeds it in the plan's stats; -profile writes cpu.pprof and
// heap.pprof into a directory.
//
// Exit codes: 0 — plan solved to proven optimality (or recovered to it by
// a retry); 3 — a degraded-but-feasible plan was produced by a budget
// surrender or a fallback stage (the report names the stage and reason);
// 1 — failure: no certified plan.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/milp/cuts"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/report"
	"github.com/etransform/etransform/internal/resilience/faultinject"
)

func main() {
	degraded, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "etransform:", err)
		os.Exit(1)
	}
	if degraded {
		os.Exit(3)
	}
}

// multiFlag collects repeated -pin/-forbid flags of the form GROUP=DC.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// run plans the transformation. degraded reports that the plan came from
// a budget surrender or a fallback stage (exit code 3).
func run(args []string) (degraded bool, err error) {
	fs := flag.NewFlagSet("etransform", flag.ContinueOnError)
	statePath := fs.String("state", "", "path to the as-is state JSON (required)")
	dr := fs.Bool("dr", false, "plan disaster recovery (secondary sites + shared backup pool)")
	dedicated := fs.Bool("dedicated", false, "with -dr: dedicated per-group backup servers (multi-failure planning) instead of the shared single-failure pool")
	shadow := fs.Bool("shadow", false, "report capacity shadow prices (LP-relaxation duals per data center)")
	omega := fs.Float64("omega", 0, "business-impact cap: max fraction of app groups per data center (0 disables)")
	aggregate := fs.Bool("aggregate", true, "aggregate identical application groups (exact reformulation)")
	candidates := fs.Int("candidates", 0, "restrict each group to its K cheapest candidate DCs (0 = all)")
	formulation := fs.String("formulation", "pair", `DR formulation: "pair" (scalable) or "paper" (literal §IV-B)`)
	gap := fs.Float64("gap", 1e-3, "MILP relative optimality gap")
	nodes := fs.Int("nodes", 20000, "branch & bound node limit")
	timeLimit := fs.Duration("timelimit", 5*time.Minute, "solve wall-clock limit")
	lpOut := fs.String("lp", "", "write the MILP in CPLEX LP format to this file and exit")
	mpsOut := fs.String("mps", "", "write the MILP in MPS format to this file and exit")
	planOut := fs.String("plan", "", "write the to-be plan JSON to this file")
	showReport := fs.Bool("report", true, "print the human-readable plan report")
	memBudget := fs.Int64("membudget", 0, "open-node queue memory budget in bytes (0 = unlimited)")
	workers := fs.Int("workers", 0, "branch & bound worker goroutines (0 = all CPUs, 1 = deterministic)")
	warmLP := fs.Bool("warmlp", false, "warm-start node LPs from the parent's simplex basis (same answer, fewer pivots)")
	cutsOn := fs.Bool("cuts", false, "separate Gomory and cover cuts at the root (same answer, tighter bound)")
	kernelOn := fs.Bool("kernel", false, "run the kernel-search primal heuristic at the root (same answer, earlier incumbents)")
	traceOut := fs.String("trace", "", "write a structured JSONL solve trace to this file (byte-stable at -workers 1)")
	metricsOut := fs.String("metrics", "", "write the solve metrics snapshot JSON to this file")
	profileDir := fs.String("profile", "", "write cpu.pprof and heap.pprof profiles into this directory")
	faults := fs.String("faults", "", `fault-injection spec, e.g. "pivot@5x2,corrupt" (testing only)`)
	faultSeed := fs.Int64("faultseed", 1, "seed for probabilistic fault injection")
	robustSpec := fs.String("robust", "", "run a Monte Carlo robustness batch under this uncertainty spec JSON")
	samples := fs.Int("samples", 200, "with -robust: number of sampled scenarios")
	seed := fs.Int64("seed", 1, "with -robust: batch seed (same seed+spec => byte-identical report)")
	cvar := fs.Float64("cvar", 0.9, "with -robust: CVaR tail level alpha in [0,1)")
	robustOut := fs.String("robust-out", "", "with -robust: write the etransform-robust/v1 report JSON to this file")
	var pins, forbids multiFlag
	fs.Var(&pins, "pin", "pin GROUP=DC (repeatable): force a group's primary site")
	fs.Var(&forbids, "forbid", "forbid GROUP=DC (repeatable): exclude a site for a group")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *statePath == "" {
		fs.Usage()
		return false, fmt.Errorf("-state is required")
	}
	inject, err := faultinject.ParseSpec(*faults, *faultSeed)
	if err != nil {
		return false, err
	}
	obsrv, err := obs.OpenFileObserver(*traceOut, *metricsOut, *profileDir, *workers == 1)
	if err != nil {
		return false, err
	}
	defer func() {
		if cerr := obsrv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	state, err := model.LoadState(*statePath)
	if err != nil {
		return false, err
	}
	var form core.Formulation
	switch *formulation {
	case "pair":
		form = core.FormulationPair
	case "paper":
		form = core.FormulationPaper
	default:
		return false, fmt.Errorf("unknown formulation %q", *formulation)
	}

	coreOpts := core.Options{
		DR:                  *dr,
		DedicatedBackups:    *dedicated,
		ComputeShadowPrices: *shadow,
		Omega:               *omega,
		Formulation:         form,
		Aggregate:           *aggregate,
		CandidateK:          *candidates,
		Solver: milp.Options{
			GapTol:     *gap,
			MaxNodes:   *nodes,
			TimeLimit:  *timeLimit,
			Workers:    *workers,
			ReuseBasis: *warmLP,
			Cuts:       cuts.Options{Enable: *cutsOn},
			Kernel:     milp.KernelOptions{Enable: *kernelOn},
			Budget:     milp.Budget{MemoryBytes: *memBudget},
			Inject:     inject,
			Trace:      obsrv.Tracer,
			Metrics:    obsrv.Metrics,
		},
	}
	if *robustSpec != "" {
		// Per-sample injectors are derived inside the harness from the
		// spec string; the shared injector must not leak into the nominal
		// reference solve or double-arm the samples.
		coreOpts.Solver.Inject = nil
	}
	planner, err := core.New(state, coreOpts)
	if err != nil {
		return false, err
	}
	for _, p := range pins {
		g, dc, err := splitPair(p)
		if err != nil {
			return false, fmt.Errorf("-pin %q: %w", p, err)
		}
		if err := planner.Pin(g, dc); err != nil {
			return false, err
		}
	}
	for _, f := range forbids {
		g, dc, err := splitPair(f)
		if err != nil {
			return false, fmt.Errorf("-forbid %q: %w", f, err)
		}
		if err := planner.Forbid(g, dc); err != nil {
			return false, err
		}
	}

	if *robustSpec != "" {
		return runRobust(state, coreOpts, robustFlags{
			specPath:  *robustSpec,
			samples:   *samples,
			seed:      *seed,
			cvar:      *cvar,
			workers:   *workers,
			faults:    *faults,
			faultSeed: *faultSeed,
			reportOut: *robustOut,
			planOut:   *planOut,
			show:      *showReport,
		})
	}

	if *lpOut != "" || *mpsOut != "" {
		m, err := planner.BuildModel()
		if err != nil {
			return false, err
		}
		write := func(path string, enc func(*os.File) error) error {
			if path == "" {
				return nil
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := enc(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote MILP to %s\n", path)
			return nil
		}
		if err := write(*lpOut, func(f *os.File) error { return m.WriteLP(f) }); err != nil {
			return false, err
		}
		return false, write(*mpsOut, func(f *os.File) error { return m.WriteMPS(f) })
	}

	asIs, err := model.EvaluateAsIs(state)
	if err != nil {
		return false, err
	}
	start := time.Now()
	plan, err := planner.Solve()
	if err != nil {
		return false, err
	}
	elapsed := time.Since(start)
	degraded = printDegradation(plan.Stats.Degradation)

	if *showReport {
		fmt.Print(report.PlanReport(state, plan))
		if len(plan.CapacityShadow) > 0 {
			fmt.Println("capacity shadow prices (LP relaxation, $/server-slot/month):")
			ids := make([]string, 0, len(plan.CapacityShadow))
			for id := range plan.CapacityShadow {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				fmt.Printf("  %-12s %s\n", id, report.Money(plan.CapacityShadow[id]))
			}
		}
		opBefore := asIs.OperationalCost()
		opAfter := plan.Cost.OperationalCost() + plan.Cost.BackupCapital
		fmt.Printf("\nas-is cost %s/month across %d data centers\n", report.Money(opBefore), asIs.DCsUsed)
		if opBefore > 0 {
			fmt.Printf("to-be cost %s (%s vs as-is), solved in %v\n",
				report.Money(opAfter), report.Percent((opAfter-opBefore)/opBefore), elapsed.Round(time.Millisecond))
		}
	}
	if *planOut != "" {
		f, err := os.Create(*planOut)
		if err != nil {
			return false, err
		}
		if err := model.WritePlan(f, plan); err != nil {
			f.Close()
			return false, err
		}
		if err := f.Close(); err != nil {
			return false, err
		}
		fmt.Printf("wrote plan to %s\n", *planOut)
	}
	return degraded, nil
}

// printDegradation summarizes a degradation report on stdout and reports
// whether the plan is degraded (exit code 3). A report with Degraded
// false records a recovered retry: worth a line, but still exit 0.
func printDegradation(d *lp.DegradationReport) bool {
	if d == nil {
		return false
	}
	if !d.Degraded {
		fmt.Printf("recovered: stage %s reached the exact optimum after %d attempts\n", d.Stage, len(d.Attempts))
		return false
	}
	fmt.Printf("DEGRADED plan: produced by stage %d (%s)\n", d.StageIndex, d.Stage)
	fmt.Printf("  reason: %s\n", d.Reason)
	if d.Limit != "" {
		fmt.Printf("  limit: %s\n", d.Limit)
	}
	if d.Gap >= 0 {
		fmt.Printf("  certified optimality gap: %.3g\n", d.Gap)
	} else {
		fmt.Println("  certified optimality gap: unknown")
	}
	for _, a := range d.Attempts {
		line := fmt.Sprintf("  attempt %d: %s %s (%dms)", a.Attempt, a.Stage, a.Outcome, a.Millis)
		if a.Error != "" {
			line += ": " + a.Error
		}
		fmt.Println(line)
	}
	return true
}

func splitPair(s string) (group, dc string, err error) {
	i := strings.IndexByte(s, '=')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("want GROUP=DC")
	}
	return s[:i], s[i+1:], nil
}
