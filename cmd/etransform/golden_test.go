package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/model"
)

var update = flag.Bool("update", false, "regenerate the golden fixtures under testdata/golden")

// goldenCases are the end-to-end fixtures: each pins the full plan JSON
// (timing fields normalized) and the exit-code class for a seeded
// etdatagen scenario at -workers 1. Run with -update after an intended
// output change; any other byte drift is a regression.
var goldenCases = []struct {
	name  string
	scale float64
	args  []string
}{
	{"enterprise1", 0.1, nil},
	{"enterprise1-dr", 0.08, []string{"-dr", "-omega", "0.6"}},
}

// normalizePlan zeroes the wall-clock fields — the only
// machine-dependent bytes in a -workers 1 plan — and re-encodes, so
// golden comparisons are exact on everything else.
func normalizePlan(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := model.ReadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	plan.Stats.WallMillis = 0
	plan.Stats.WorkMillis = 0
	if d := plan.Stats.Degradation; d != nil {
		for i := range d.Attempts {
			d.Attempts[i].Millis = 0
		}
	}
	var buf bytes.Buffer
	if err := model.WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenPlans(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "golden", tc.name)
			statePath := filepath.Join(dir, "state.json")
			goldenPath := filepath.Join(dir, "plan.json")
			exitPath := filepath.Join(dir, "exit_code")

			if *update {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				s, err := datagen.Enterprise1().Scaled(tc.scale).Generate()
				if err != nil {
					t.Fatal(err)
				}
				if err := model.SaveState(statePath, s); err != nil {
					t.Fatal(err)
				}
			}

			planPath := filepath.Join(t.TempDir(), "plan.json")
			args := append([]string{"-state", statePath, "-plan", planPath,
				"-report=false", "-workers", "1", "-timelimit", "60s"}, tc.args...)
			degraded, err := run(args)
			if err != nil {
				t.Fatal(err)
			}
			exitCode := 0
			if degraded {
				exitCode = 3
			}
			got := normalizePlan(t, planPath)

			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(exitPath, []byte(fmt.Sprintf("%d\n", exitCode)), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (exit %d)", goldenPath, exitCode)
				return
			}

			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("plan JSON drifted from %s\n(run with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
					goldenPath, got, want)
			}
			wantExit, err := os.ReadFile(exitPath)
			if err != nil {
				t.Fatal(err)
			}
			if gotExit := fmt.Sprintf("%d\n", exitCode); gotExit != string(wantExit) {
				t.Errorf("exit code %q, golden %q", gotExit, wantExit)
			}
		})
	}
}
