// Command etbench regenerates every table and figure of the paper's
// evaluation (§VI) and prints them in the same structure the paper
// reports: Table II, Figure 4(a–c) with Tables 4(d,e), Figure 6(a–c)
// with Tables 6(d,e), and Figures 7–10.
//
// Usage:
//
//	etbench [-experiment all|table2|fig4|fig6|fig7|fig8|fig9|fig10] [-scale full|bench]
//	        [-sweep-workers N] [-workers N] [-json FILE -json-pr N]
//	etbench -validate DIR
//
// -json additionally writes a machine-readable report (schema
// etransform-bench/v1, one record per case-study solve: problem size,
// nodes, iterations, workers, certified gap, wall/busy time and plan
// cost); -json-pr stamps the PR number the artifact belongs to.
//
// -validate checks every BENCH_*.json (etransform-bench/v1) and
// ROBUST_*.json (etransform-robust/v1) in DIR against its schema (the
// same strict parses ReadBenchReport/ReadRobustReport apply: unknown
// fields and contract violations are errors) and runs nothing else;
// scripts/check.sh uses it to gate the checked-in perf trajectory and
// the robustness smoke. See docs/benchmarks/README.md for both schemas,
// field by field.
//
// At -scale bench the Federal dataset is shrunk (the shrink factor
// appears in the output) so a full run fits a laptop budget; -scale full
// runs everything at paper size. Independent solves — the fig4/fig6
// datasets and every fig7/fig8/fig10 sweep point — fan out across
// -sweep-workers goroutines (default: all CPUs); -workers sets the
// branch & bound worker count per solve (default: 1 inside a concurrent
// sweep). Output is assembled in a fixed order, so it is identical for
// any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/experiments"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "etbench:", err)
		os.Exit(1)
	}
}

// validateReports strict-parses every BENCH_*.json and ROBUST_*.json
// under dir and fails on the first file that does not satisfy its
// schema contract. A directory with no reports of either kind is an
// error too — a typo'd path must not read as "all valid".
func validateReports(dir string) error {
	benches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	robusts, err := filepath.Glob(filepath.Join(dir, "ROBUST_*.json"))
	if err != nil {
		return err
	}
	if len(benches)+len(robusts) == 0 {
		return fmt.Errorf("no BENCH_*.json or ROBUST_*.json files in %s", dir)
	}
	for _, path := range benches {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rep, err := obs.ReadBenchReport(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok (PR %d, %d scenarios)\n", path, rep.PR, len(rep.Scenarios))
	}
	for _, path := range robusts {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rep, err := obs.ReadRobustReport(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok (%s, %d samples, %d ranked plans)\n", path, rep.Dataset, rep.Samples, len(rep.Plans))
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("etbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "all | table2 | fig4 | fig6 | fig7 | fig8 | fig9 | fig10")
	scaleName := fs.String("scale", "bench", `"bench" (laptop budget, Federal shrunk) or "full" (paper size)`)
	dataset := fs.String("dataset", "", "restrict fig4/fig6 to one dataset: enterprise1 | florida | federal")
	csvDir := fs.String("csv", "", "also write each experiment's data as CSV into this directory")
	sweepWorkers := fs.Int("sweep-workers", 0, "concurrent sweep points / datasets (0 = all CPUs)")
	solverWorkers := fs.Int("workers", 0, "branch & bound workers per solve (0 = auto)")
	jsonOut := fs.String("json", "", "write a BENCH_<pr>.json perf report of the fig4/fig6 solves to this file")
	jsonPR := fs.Int("json-pr", 0, "PR number stamped into the -json report (required with -json)")
	validateDir := fs.String("validate", "", "validate every BENCH_*.json in this directory against the schema and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validateDir != "" {
		return validateReports(*validateDir)
	}
	if *jsonOut != "" && *jsonPR <= 0 {
		return fmt.Errorf("-json needs a positive -json-pr")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	writeCSV := func(name string, headers []string, rows [][]string) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := report.WriteCSV(f, headers, rows); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	var sc experiments.Scale
	switch *scaleName {
	case "bench":
		sc = experiments.BenchScale()
	case "full":
		sc = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	sc.SweepWorkers = *sweepWorkers
	sc.SolverWorkers = *solverWorkers

	run := func(name string, f func() error) error {
		if *experiment != "all" && *experiment != name {
			return nil
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	// The -json report accumulates one scenario per fig4/fig6 case-study
	// solve, appended in the fixed render order so the artifact is as
	// deterministic as the text output. With -json set, each dataset is
	// additionally re-solved with warm-started node LPs
	// (Options.ReuseBasis) so the artifact carries a cold/warm pair per
	// dataset; counters come from the metrics snapshot the solve embeds
	// in its stats.
	var benchScenarios []obs.BenchScenario

	scenario := func(name string, dr bool, res *experiments.CaseStudyResult, warm bool) obs.BenchScenario {
		s := obs.BenchScenario{
			Name: name, DR: dr,
			Rows: res.Stats.Rows, Cols: res.Stats.Cols,
			Nodes: res.Stats.Nodes, Iterations: res.Stats.Iterations,
			Workers: res.Stats.Workers, Gap: res.Stats.Gap,
			WallMillis: res.Stats.WallMillis, WorkMillis: res.Stats.WorkMillis,
			Cost: res.Cost("ETRANSFORM"), Warm: warm,
		}
		if s.Gap < 0 {
			// A fallback-stage plan carries the −1 "gap unknown" sentinel;
			// the report schema records that explicitly instead of shipping
			// a negative gap (which Validate rightly rejects).
			s.Gap, s.GapUnknown = 0, true
		}
		if m := res.Stats.Metrics; m != nil {
			s.WarmHits = m.Counters[obs.MetricSimplexWarmHits]
			s.WarmMisses = m.Counters[obs.MetricSimplexWarmMisses]
			s.Phase1Skipped = m.Counters[obs.MetricSimplexPhase1Skipped]
			s.Factorizations = m.Counters[obs.MetricSimplexFactorizations]
			s.EtaUpdates = m.Counters[obs.MetricSimplexEtaUpdates]
			s.PricedCandidates = m.Counters[obs.MetricSimplexPricedCandidates]
			s.RefactorDriftMax = m.Gauges[obs.MetricSimplexRefactorDriftMax]
			s.CutsSeparated = m.Counters[obs.MetricMILPCutsSeparated]
			s.CutsActive = m.Counters[obs.MetricMILPCutsActive]
			s.KernelIncumbents = m.Counters[obs.MetricMILPKernelIncumbents]
		}
		return s
	}

	caseStudies := func(fig string, dr bool) error {
		var cfgs []datagen.CaseStudyConfig
		for _, cfg := range []datagen.CaseStudyConfig{datagen.Enterprise1(), datagen.Florida(), datagen.Federal()} {
			if *dataset == "" || cfg.Name == *dataset {
				cfgs = append(cfgs, cfg)
			}
		}
		// Solve the datasets concurrently; render in the fixed order.
		results := make([]*experiments.CaseStudyResult, len(cfgs))
		warmResults := make([]*experiments.CaseStudyResult, len(cfgs))
		cutsResults := make([]*experiments.CaseStudyResult, len(cfgs))
		errs := make([]error, len(cfgs))
		var wg sync.WaitGroup
		for i := range cfgs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				scCold := sc
				scCold.CollectMetrics = *jsonOut != ""
				results[i], errs[i] = experiments.CaseStudy(cfgs[i], scCold, dr)
				if errs[i] != nil || *jsonOut == "" {
					return
				}
				scWarm := scCold
				scWarm.ReuseBasis = true
				warmResults[i], errs[i] = experiments.CaseStudy(cfgs[i], scWarm, dr)
				if errs[i] != nil {
					return
				}
				scCuts := scCold
				scCuts.Cuts = true
				scCuts.Kernel = true
				cutsResults[i], errs[i] = experiments.CaseStudy(cfgs[i], scCuts, dr)
			}(i)
		}
		wg.Wait()
		for i, cfg := range cfgs {
			if errs[i] != nil {
				return errs[i]
			}
			res := results[i]
			fmt.Print(res.Render())
			fmt.Printf("solver: %d rows × %d cols, %d nodes, gap %.2g, %d workers, wall %dms (busy %dms)\n\n",
				res.Stats.Rows, res.Stats.Cols, res.Stats.Nodes, res.Stats.Gap,
				res.Stats.Workers, res.Stats.WallMillis, res.Stats.WorkMillis)
			benchScenarios = append(benchScenarios, scenario(fig+"/"+cfg.Name, dr, res, false))
			if wres := warmResults[i]; wres != nil {
				ws := scenario(fig+"/"+cfg.Name+"+warm", dr, wres, true)
				fmt.Printf("warm re-solve: %d nodes, %d iterations, wall %dms, warm hits %d / misses %d, cost Δ %+.2f\n\n",
					wres.Stats.Nodes, wres.Stats.Iterations, wres.Stats.WallMillis,
					ws.WarmHits, ws.WarmMisses, wres.Cost("ETRANSFORM")-res.Cost("ETRANSFORM"))
				benchScenarios = append(benchScenarios, ws)
			}
			if cres := cutsResults[i]; cres != nil {
				cs := scenario(fig+"/"+cfg.Name+"+cuts", dr, cres, false)
				cs.CutsEnabled = true
				fmt.Printf("cuts+kernel re-solve: %d nodes, %d iterations, wall %dms, gap %.2g, %d cuts (%d active), %d kernel incumbents, cost Δ %+.2f\n\n",
					cres.Stats.Nodes, cres.Stats.Iterations, cres.Stats.WallMillis, cres.Stats.Gap,
					cs.CutsSeparated, cs.CutsActive, cs.KernelIncumbents,
					cres.Cost("ETRANSFORM")-res.Cost("ETRANSFORM"))
				benchScenarios = append(benchScenarios, cs)
			}
			var rows [][]string
			for _, algo := range experiments.AlgorithmNames {
				b, ok := res.Breakdowns[algo]
				if !ok {
					continue
				}
				rows = append(rows, []string{
					algo,
					strconv.FormatFloat(res.Cost(algo), 'f', 2, 64),
					strconv.FormatFloat(res.Reduction(algo)*100, 'f', 1, 64),
					strconv.Itoa(b.LatencyViolations),
					strconv.FormatFloat(b.Latency, 'f', 2, 64),
				})
			}
			if err := writeCSV(fmt.Sprintf("%s_%s.csv", fig, cfg.Name),
				[]string{"algorithm", "cost", "reduction_pct", "latency_violations", "penalty_paid"}, rows); err != nil {
				return err
			}
		}
		return nil
	}

	steps := []struct {
		name string
		f    func() error
	}{
		{"table2", func() error {
			rows := experiments.TableII(sc)
			fmt.Print(experiments.RenderTableII(rows))
			var crows [][]string
			for _, r := range rows {
				crows = append(crows, []string{r.Name, strconv.Itoa(r.CurrentDCs),
					strconv.Itoa(r.TargetDCs), strconv.Itoa(r.Servers), strconv.Itoa(r.AppGroups)})
			}
			return writeCSV("table2.csv",
				[]string{"dataset", "asis_dcs", "target_dcs", "servers", "app_groups"}, crows)
		}},
		{"fig4", func() error { return caseStudies("fig4", false) }},
		{"fig6", func() error { return caseStudies("fig6", true) }},
		{"fig7", func() error {
			res, err := experiments.Figure7(context.Background(), sc)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			panels := map[string]map[float64][]float64{
				"fig7_total_cost.csv": res.TotalCost,
				"fig7_space_cost.csv": res.SpaceCost,
				"fig7_latency_ms.csv": res.MeanLatMs,
			}
			for name, data := range panels {
				headers := []string{"penalty"}
				for _, split := range experiments.Fig7Splits {
					headers = append(headers, experiments.Fig7SplitName(split))
				}
				var crows [][]string
				for k, pen := range res.Penalties {
					row := []string{strconv.FormatFloat(pen, 'f', -1, 64)}
					for _, split := range experiments.Fig7Splits {
						row = append(row, strconv.FormatFloat(data[split][k], 'f', 4, 64))
					}
					crows = append(crows, row)
				}
				if err := writeCSV(name, headers, crows); err != nil {
					return err
				}
			}
			return nil
		}},
		{"fig8", func() error {
			res, err := experiments.Figure8(context.Background(), sc)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			var crows [][]string
			for i := range res.DRServerCost {
				crows = append(crows, []string{
					strconv.FormatFloat(res.DRServerCost[i], 'f', -1, 64),
					strconv.Itoa(res.DCsUsed[i]), strconv.Itoa(res.DRServers[i]),
				})
			}
			return writeCSV("fig8.csv", []string{"dr_server_cost", "dcs_used", "dr_servers"}, crows)
		}},
		{"fig9", func() error {
			res, err := experiments.Figure9()
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			var crows [][]string
			for d := range res.TotalCost {
				crows = append(crows, []string{strconv.Itoa(d),
					strconv.FormatFloat(res.SpaceCost[d], 'f', 2, 64),
					strconv.FormatFloat(res.WANCost[d], 'f', 2, 64),
					strconv.FormatFloat(res.TotalCost[d], 'f', 2, 64)})
			}
			return writeCSV("fig9.csv", []string{"location", "space_cost", "wan_cost", "total_cost"}, crows)
		}},
		{"fig10", func() error {
			res, err := experiments.Figure10(context.Background(), sc)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			var crows [][]string
			for i := range res.GroupCounts {
				crows = append(crows, []string{strconv.Itoa(res.GroupCounts[i]), strconv.Itoa(res.DCsUsed[i])})
			}
			return writeCSV("fig10.csv", []string{"app_groups", "dcs_used"}, crows)
		}},
	}
	for _, s := range steps {
		if err := run(s.name, s.f); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		rep := &obs.BenchReport{
			Schema: obs.BenchSchema, PR: *jsonPR,
			GoVersion: runtime.Version(), CPUs: runtime.NumCPU(),
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
			Scenarios: benchScenarios,
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := obs.WriteBenchReport(f, rep); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", *jsonOut, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote bench report to %s\n", *jsonOut)
	}
	return nil
}
