package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTable2WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "table2", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunFig9WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "fig9", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig9.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperimentScale(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Error("unknown scale accepted")
	}
}
