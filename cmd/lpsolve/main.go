// Command lpsolve is a standalone solver for models in CPLEX LP or MPS
// file format (selected by extension), built on the repository's simplex
// and branch & bound engines — the "optimization engine" box of the
// paper's architecture (Figure 5), usable independently of the planner.
//
// Usage:
//
//	lpsolve [-gap G] [-nodes N] [-timelimit D] [-workers N]
//	        [-trace FILE] [-metrics FILE] [-profile DIR] model.lp|model.mps
//
// The branch & bound search runs -workers goroutines (0 = all CPUs; 1 =
// deterministic sequential search). Ctrl-C cancels the solve gracefully:
// the best incumbent found so far is printed, marked as a partial
// (uncertified-optimal) result.
//
// Observability (all off by default, zero cost when off): -trace streams
// structured solve events as JSONL (byte-stable across runs at
// -workers 1); -metrics writes the solve metrics snapshot JSON;
// -profile writes cpu.pprof and heap.pprof into a directory.
//
// Exit codes: 0 — solved to proven (gap-tolerance) optimality, or a
// conclusive infeasible/unbounded verdict; 3 — a budget or limit stopped
// the search but a certified feasible incumbent was surrendered
// (degraded-but-feasible); 1 — failure: no usable answer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/milp/cuts"
	"github.com/etransform/etransform/internal/obs"
	"github.com/etransform/etransform/internal/resilience/faultinject"
	"github.com/etransform/etransform/internal/tol"
)

func main() {
	degraded, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpsolve:", err)
		os.Exit(1)
	}
	if degraded {
		os.Exit(3)
	}
}

// run solves the model. degraded reports that a limit stopped the search
// and a feasible-but-unproven incumbent was printed (exit code 3).
func run(args []string) (degraded bool, err error) {
	fs := flag.NewFlagSet("lpsolve", flag.ContinueOnError)
	gap := fs.Float64("gap", tol.Gap, "MILP relative optimality gap")
	nodes := fs.Int("nodes", 200000, "branch & bound node limit")
	timeLimit := fs.Duration("timelimit", 10*time.Minute, "wall-clock limit")
	memBudget := fs.Int64("membudget", 0, "open-node queue memory budget in bytes (0 = unlimited)")
	workers := fs.Int("workers", 0, "branch & bound worker goroutines (0 = all CPUs, 1 = deterministic)")
	warmLP := fs.Bool("warmlp", false, "warm-start node LPs from the parent's simplex basis (same answer, fewer pivots)")
	cutsOn := fs.Bool("cuts", false, "separate Gomory and cover cuts at the root (same answer, tighter bound)")
	kernelOn := fs.Bool("kernel", false, "run the kernel-search primal heuristic at the root (same answer, earlier incumbents)")
	traceOut := fs.String("trace", "", "write a structured JSONL solve trace to this file (byte-stable at -workers 1)")
	metricsOut := fs.String("metrics", "", "write the solve metrics snapshot JSON to this file")
	profileDir := fs.String("profile", "", "write cpu.pprof and heap.pprof profiles into this directory")
	faults := fs.String("faults", "", `fault-injection spec, e.g. "pivot@5x2,corrupt" (testing only)`)
	faultSeed := fs.Int64("faultseed", 1, "seed for probabilistic fault injection")
	verbose := fs.Bool("v", false, "print every nonzero variable (default: first 50)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return false, fmt.Errorf("want exactly one LP file argument")
	}
	inject, err := faultinject.ParseSpec(*faults, *faultSeed)
	if err != nil {
		return false, err
	}
	obsrv, err := obs.OpenFileObserver(*traceOut, *metricsOut, *profileDir, *workers == 1)
	if err != nil {
		return false, err
	}
	defer func() {
		if cerr := obsrv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	var m *lp.Model
	if strings.HasSuffix(strings.ToLower(path), ".mps") {
		m, err = lp.ParseMPS(f)
	} else {
		m, err = lp.ParseLP(f)
	}
	f.Close()
	if err != nil {
		return false, err
	}
	fmt.Printf("model: %s\n", m.Stats())

	// Ctrl-C cancels the context; the solver surrenders its best
	// incumbent instead of dying mid-search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	sol, err := milp.SolveContext(ctx, m, &milp.Options{
		GapTol: *gap, MaxNodes: *nodes, TimeLimit: *timeLimit, Workers: *workers,
		ReuseBasis: *warmLP,
		Cuts:       cuts.Options{Enable: *cutsOn},
		Kernel:     milp.KernelOptions{Enable: *kernelOn},
		Budget:     milp.Budget{MemoryBytes: *memBudget},
		Inject:     inject,
		Trace:      obsrv.Tracer,
		Metrics:    obsrv.Metrics,
	})
	canceled := err != nil && errors.Is(err, context.Canceled) && sol != nil
	if err != nil && !canceled {
		return false, err
	}
	fmt.Printf("status: %v in %v (%d simplex iterations, %d nodes, gap %.3g)\n",
		sol.Status, time.Since(start).Round(time.Millisecond), sol.Iterations, sol.Nodes, sol.Gap)
	if sol.Workers > 0 {
		fmt.Printf("search: %d workers, peak queue %d, wall %v, busy %v\n",
			sol.Workers, sol.PeakQueueDepth,
			sol.WallTime.Round(time.Millisecond), sol.WorkTime.Round(time.Millisecond))
	}
	if canceled {
		if sol.X == nil {
			return false, fmt.Errorf("canceled before any feasible point was found")
		}
		fmt.Printf("canceled: best incumbent so far follows (bound gap %.3g, NOT proven optimal)\n", sol.Gap)
		degraded = true
	} else if sol.Status == lp.StatusNodeLimit {
		if sol.X == nil {
			limit := sol.Limit
			if limit == "" {
				limit = "limit"
			}
			return false, fmt.Errorf("search stopped by %s before any feasible point was found", limit)
		}
		fmt.Printf("degraded: search stopped by %s; best incumbent follows (bound gap %.3g, NOT proven optimal)\n",
			sol.Limit, sol.Gap)
		degraded = true
	} else if !sol.Status.HasSolution() || sol.X == nil {
		// Infeasible / unbounded: a conclusive verdict, exit 0.
		return false, nil
	}
	// Every printed solution ships with an independent feasibility
	// certificate: certify re-checks all rows, bounds and integrality
	// directly against the parsed model. Canceled partial incumbents are
	// certified through Check (no claimed-objective comparison — the
	// search did not finish); completed solves go through CheckSolution,
	// which additionally cross-checks the reported objective.
	certOpts := &certify.Options{FeasTol: tol.Accept, IntTol: tol.Accept}
	var cert *certify.Certificate
	if canceled {
		cert, err = certify.Check(m, sol.X, certOpts)
	} else {
		cert, err = certify.CheckSolution(m, sol, certOpts)
	}
	if err != nil {
		return false, err
	}
	if cert != nil {
		fmt.Printf("certificate: %s\n", cert.Summary())
		if err := cert.Err(); err != nil {
			return false, err
		}
	}
	fmt.Printf("objective: %.8g\n", sol.Objective)
	printed := 0
	for j := 0; j < m.NumVars(); j++ {
		v := sol.X[j]
		if tol.IsZero(v) {
			continue
		}
		if !*verbose && printed >= 50 {
			fmt.Printf("  … (%d more nonzero variables; use -v)\n", countNonzero(sol.X)-printed)
			break
		}
		fmt.Printf("  %s = %g\n", m.Var(lp.VarID(j)).Name, v)
		printed++
	}
	return degraded, nil
}

func countNonzero(x []float64) int {
	n := 0
	for _, v := range x {
		if !tol.IsZero(v) {
			n++
		}
	}
	return n
}
