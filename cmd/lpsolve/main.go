// Command lpsolve is a standalone solver for models in CPLEX LP or MPS
// file format (selected by extension), built on the repository's simplex
// and branch & bound engines — the "optimization engine" box of the
// paper's architecture (Figure 5), usable independently of the planner.
//
// Usage:
//
//	lpsolve [-gap G] [-nodes N] [-timelimit D] [-workers N] model.lp|model.mps
//
// The branch & bound search runs -workers goroutines (0 = all CPUs; 1 =
// deterministic sequential search). Ctrl-C cancels the solve gracefully:
// the best incumbent found so far is printed, marked as a partial
// (uncertified-optimal) result.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/etransform/etransform/internal/certify"
	"github.com/etransform/etransform/internal/lp"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/tol"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lpsolve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lpsolve", flag.ContinueOnError)
	gap := fs.Float64("gap", tol.Gap, "MILP relative optimality gap")
	nodes := fs.Int("nodes", 200000, "branch & bound node limit")
	timeLimit := fs.Duration("timelimit", 10*time.Minute, "wall-clock limit")
	workers := fs.Int("workers", 0, "branch & bound worker goroutines (0 = all CPUs, 1 = deterministic)")
	verbose := fs.Bool("v", false, "print every nonzero variable (default: first 50)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly one LP file argument")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var m *lp.Model
	if strings.HasSuffix(strings.ToLower(path), ".mps") {
		m, err = lp.ParseMPS(f)
	} else {
		m, err = lp.ParseLP(f)
	}
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("model: %s\n", m.Stats())

	// Ctrl-C cancels the context; the solver surrenders its best
	// incumbent instead of dying mid-search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	sol, err := milp.SolveContext(ctx, m, &milp.Options{
		GapTol: *gap, MaxNodes: *nodes, TimeLimit: *timeLimit, Workers: *workers,
	})
	canceled := err != nil && errors.Is(err, context.Canceled) && sol != nil
	if err != nil && !canceled {
		return err
	}
	fmt.Printf("status: %v in %v (%d simplex iterations, %d nodes, gap %.3g)\n",
		sol.Status, time.Since(start).Round(time.Millisecond), sol.Iterations, sol.Nodes, sol.Gap)
	if sol.Workers > 0 {
		fmt.Printf("search: %d workers, peak queue %d, wall %v, busy %v\n",
			sol.Workers, sol.PeakQueueDepth,
			sol.WallTime.Round(time.Millisecond), sol.WorkTime.Round(time.Millisecond))
	}
	if canceled {
		if sol.X == nil {
			fmt.Println("canceled before any feasible point was found")
			return nil
		}
		fmt.Printf("canceled: best incumbent so far follows (bound gap %.3g, NOT proven optimal)\n", sol.Gap)
	} else if !sol.Status.HasSolution() || sol.X == nil {
		return nil
	}
	// Every printed solution ships with an independent feasibility
	// certificate: certify re-checks all rows, bounds and integrality
	// directly against the parsed model. Canceled partial incumbents are
	// certified through Check (no claimed-objective comparison — the
	// search did not finish); completed solves go through CheckSolution,
	// which additionally cross-checks the reported objective.
	certOpts := &certify.Options{FeasTol: tol.Accept, IntTol: tol.Accept}
	var cert *certify.Certificate
	if canceled {
		cert, err = certify.Check(m, sol.X, certOpts)
	} else {
		cert, err = certify.CheckSolution(m, sol, certOpts)
	}
	if err != nil {
		return err
	}
	if cert != nil {
		fmt.Printf("certificate: %s\n", cert.Summary())
		if err := cert.Err(); err != nil {
			return err
		}
	}
	fmt.Printf("objective: %.8g\n", sol.Objective)
	printed := 0
	for j := 0; j < m.NumVars(); j++ {
		v := sol.X[j]
		if tol.IsZero(v) {
			continue
		}
		if !*verbose && printed >= 50 {
			fmt.Printf("  … (%d more nonzero variables; use -v)\n", countNonzero(sol.X)-printed)
			break
		}
		fmt.Printf("  %s = %g\n", m.Var(lp.VarID(j)).Name, v)
		printed++
	}
	return nil
}

func countNonzero(x []float64) int {
	n := 0
	for _, v := range x {
		if !tol.IsZero(v) {
			n++
		}
	}
	return n
}
