package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLPFile(t *testing.T) {
	path := writeFile(t, "m.lp", `Minimize
 obj: -1 x - 2 y
Subject To
 c: x + y <= 4
Bounds
 0 <= x <= 3
 0 <= y <= 3
End`)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMPSFile(t *testing.T) {
	path := writeFile(t, "m.mps", `NAME test
ROWS
 N OBJ
 L c
COLUMNS
 x OBJ -1
 x c 1
RHS
 RHS c 4
BOUNDS
 UP BND x 10
ENDATA`)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.lp"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFile(t, "bad.lp", "garbage ] [")
	if err := run([]string{bad}); err == nil {
		t.Error("garbage accepted")
	}
}
