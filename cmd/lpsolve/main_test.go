package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const knapsackLP = `Minimize
 obj: -1 x - 2 y
Subject To
 c: x + y <= 4
Bounds
 0 <= x <= 3
 0 <= y <= 3
End`

func TestRunLPFile(t *testing.T) {
	path := writeFile(t, "m.lp", knapsackLP)
	degraded, err := run([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if degraded {
		t.Error("clean solve reported degraded")
	}
}

func TestRunMPSFile(t *testing.T) {
	path := writeFile(t, "m.mps", `NAME test
ROWS
 N OBJ
 L c
COLUMNS
 x OBJ -1
 x c 1
RHS
 RHS c 4
BOUNDS
 UP BND x 10
ENDATA`)
	if _, err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultSpec: an always-on corruption fault must turn a clean solve
// into an error (exit 1 path), and a malformed spec must be rejected.
func TestRunFaultSpec(t *testing.T) {
	path := writeFile(t, "m.lp", knapsackLP)
	if _, err := run([]string{"-faults", "corruptxall", path}); err == nil {
		t.Error("corrupted solve succeeded")
	}
	if _, err := run([]string{"-faults", "bogus-kind", path}); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

// TestRunDegradedExit: a node budget too small to close the gap but
// large enough to find an incumbent must surrender it as degraded (exit
// code 3 path). Workers=1 makes the search — and so the incumbent's
// existence at this node count — deterministic.
func TestRunDegradedExit(t *testing.T) {
	path := writeFile(t, "m.lp", `Maximize
 obj: 8 a + 11 b + 6 c + 4 d + 7 e + 9 f + 5 g + 10 h
Subject To
 w: 5 a + 7 b + 4 c + 3 d + 5 e + 6 f + 4 g + 7 h <= 14
Binaries
 a b c d e f g h
End`)
	degraded, err := run([]string{"-nodes", "30", "-workers", "1", path})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Error("limit-stopped solve with incumbent not reported degraded")
	}
	// Too few nodes for any incumbent: a clean failure, not a bogus plan.
	if _, err := run([]string{"-nodes", "1", "-workers", "1", path}); err == nil {
		t.Error("no-incumbent limit stop did not fail")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run([]string{}); err == nil {
		t.Error("no args accepted")
	}
	if _, err := run([]string{"/nonexistent.lp"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFile(t, "bad.lp", "garbage ] [")
	if _, err := run([]string{bad}); err == nil {
		t.Error("garbage accepted")
	}
}
