// Command etserve runs the eTransform planner as a long-lived HTTP
// service (internal/serve): clients POST as-is states to /v1/plans and
// poll for certified plans, with a content-hash solve cache, streaming
// JSONL solve traces, and warm re-planning from a previous job's plan.
//
// Usage:
//
//	etserve [-addr :8080] [solve flags]
//
// Typical invocations:
//
//	etserve -addr :8080 -workers 1
//	etserve -addr :0 -dr -omega 0.4 -solvers 2
//	etserve -preload seed1.json -preload seed2.json
//
// The solve flags (-dr, -omega, -gap, -nodes, -timelimit, -workers, …)
// mirror the etransform CLI and apply to every job the daemon accepts,
// so a plan fetched from GET /v1/plans/{id}/plan is byte-identical to
// `etransform -state <same file> -plan -` with the same flags.
//
// -preload solves the given state files before the listener starts,
// populating the plan cache so the first real submission of a known
// estate is answered instantly. With -addr :0 the daemon picks a free
// port; the chosen address is printed as "etserve listening on ..." so
// scripts can scrape it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/experiments"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/milp/cuts"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "etserve:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func run(args []string) error {
	fs := flag.NewFlagSet("etserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use :0 for a free port; the bound address is printed)")
	queueSize := fs.Int("queue", 64, "maximum queued jobs; submissions beyond it get HTTP 429")
	solvers := fs.Int("solvers", 1, "concurrent solves (total parallelism = solvers × workers)")
	var preload multiFlag
	fs.Var(&preload, "preload", "solve this as-is state JSON at startup to warm the plan cache (repeatable)")

	// Solve flags, mirroring the etransform CLI.
	dr := fs.Bool("dr", false, "plan disaster recovery (secondary sites + shared backup pool)")
	dedicated := fs.Bool("dedicated", false, "with -dr: dedicated per-group backup servers instead of the shared pool")
	shadow := fs.Bool("shadow", false, "report capacity shadow prices in every plan")
	omega := fs.Float64("omega", 0, "business-impact cap: max fraction of app groups per data center (0 disables)")
	aggregate := fs.Bool("aggregate", true, "aggregate identical application groups (exact reformulation)")
	candidates := fs.Int("candidates", 0, "restrict each group to its K cheapest candidate DCs (0 = all)")
	formulation := fs.String("formulation", "pair", `DR formulation: "pair" (scalable) or "paper" (literal §IV-B)`)
	gap := fs.Float64("gap", 1e-3, "MILP relative optimality gap")
	nodes := fs.Int("nodes", 20000, "branch & bound node limit")
	timeLimit := fs.Duration("timelimit", 5*time.Minute, "per-job solve wall-clock limit")
	memBudget := fs.Int64("membudget", 0, "open-node queue memory budget in bytes (0 = unlimited)")
	workers := fs.Int("workers", 0, "branch & bound worker goroutines per job (0 = all CPUs, 1 = deterministic traces)")
	warmLP := fs.Bool("warmlp", false, "warm-start node LPs from the parent's simplex basis")
	cutsOn := fs.Bool("cuts", false, "separate Gomory and cover cuts at the root")
	kernelOn := fs.Bool("kernel", false, "run the kernel-search primal heuristic at the root")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var form core.Formulation
	switch *formulation {
	case "pair":
		form = core.FormulationPair
	case "paper":
		form = core.FormulationPaper
	default:
		return fmt.Errorf("unknown formulation %q", *formulation)
	}
	coreOpts := core.Options{
		DR:                  *dr,
		DedicatedBackups:    *dedicated,
		ComputeShadowPrices: *shadow,
		Omega:               *omega,
		Formulation:         form,
		Aggregate:           *aggregate,
		CandidateK:          *candidates,
		Solver: milp.Options{
			GapTol:    *gap,
			MaxNodes:  *nodes,
			TimeLimit: *timeLimit,
			Workers:   *workers,
			// ReuseBasis additionally turns itself on for warm re-plans
			// (?prev=), independent of this daemon-wide default.
			ReuseBasis: *warmLP,
			Cuts:       cuts.Options{Enable: *cutsOn},
			Kernel:     milp.KernelOptions{Enable: *kernelOn},
			Budget:     milp.Budget{MemoryBytes: *memBudget},
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(serve.Config{Core: coreOpts, Queue: *queueSize, Solvers: *solvers})
	defer srv.Close()

	if len(preload) > 0 {
		states := make([]*model.AsIsState, len(preload))
		for i, path := range preload {
			s, err := model.LoadState(path)
			if err != nil {
				return fmt.Errorf("-preload: %w", err)
			}
			states[i] = s
		}
		// Fan the preload solves across the solver budget; an interrupt
		// during warmup cancels cleanly instead of draining the list.
		err := experiments.ForEachContext(ctx, len(states), *solvers, func(i int) error {
			if err := srv.Warm(ctx, states[i]); err != nil {
				return fmt.Errorf("-preload %s: %w", preload[i], err)
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("etserve: preloaded %d plans into the cache\n", len(states))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("etserve listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
