package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/etransform/etransform/internal/model"
)

func TestRunDatasets(t *testing.T) {
	for _, ds := range []string{"enterprise1", "fig7", "fig9"} {
		t.Run(ds, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), ds+".json")
			args := []string{"-dataset", ds, "-o", out}
			if ds == "enterprise1" {
				args = append(args, "-scale", "0.1")
			}
			if err := run(args); err != nil {
				t.Fatal(err)
			}
			s, err := model.LoadState(out)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Groups) == 0 {
				t.Error("empty dataset")
			}
		})
	}
}

func TestRunSeedOverride(t *testing.T) {
	a := filepath.Join(t.TempDir(), "a.json")
	b := filepath.Join(t.TempDir(), "b.json")
	if err := run([]string{"-dataset", "enterprise1", "-scale", "0.1", "-seed", "5", "-o", a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dataset", "enterprise1", "-scale", "0.1", "-seed", "6", "-o", b}); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) == string(db) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "bogus"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}
