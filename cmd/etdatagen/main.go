// Command etdatagen emits the synthetic evaluation datasets of the paper
// (§VI-A) as as-is state JSON for use with the etransform command.
//
// Usage:
//
//	etdatagen -dataset enterprise1|florida|federal|fig7|fig9 [-scale F] [-seed N] -o out.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "etdatagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("etdatagen", flag.ContinueOnError)
	dataset := fs.String("dataset", "enterprise1", "enterprise1 | florida | federal | fig7 | fig9")
	scale := fs.Float64("scale", 1, "shrink factor for the case-study datasets (0 < scale ≤ 1)")
	seed := fs.Int64("seed", 0, "override the dataset's default random seed (0 keeps it)")
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		state *model.AsIsState
		err   error
	)
	switch *dataset {
	case "enterprise1", "florida", "federal":
		var cfg datagen.CaseStudyConfig
		switch *dataset {
		case "enterprise1":
			cfg = datagen.Enterprise1()
		case "florida":
			cfg = datagen.Florida()
		case "federal":
			cfg = datagen.Federal()
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *scale > 0 && *scale < 1 {
			cfg = cfg.Scaled(*scale)
		}
		state, err = cfg.Generate()
	case "fig7":
		cfg := datagen.Fig7Config()
		cfg.PenaltyPerUser = 100
		if *seed != 0 {
			cfg.Seed = *seed
		}
		state, err = cfg.Generate()
	case "fig9":
		cfg := datagen.Fig9Config()
		if *seed != 0 {
			cfg.Seed = *seed
		}
		state, err = cfg.Generate()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := model.WriteState(w, state); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s dataset (%d groups, %d target DCs) to %s\n",
			state.Name, len(state.Groups), len(state.Target.DCs), *out)
	}
	return nil
}
