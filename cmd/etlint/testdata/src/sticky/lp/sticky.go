// Package lp is etlint fixture code for the stickyerr analyzer. It is
// deliberately named lp and declares its own Solution/Model types: the
// analyzer matches the type name and package name, so the fixture
// exercises the same recognition path as the real solver package.
package lp

// Status classifies a solve result.
type Status int

// StatusOptimal is the only status a fixture needs.
const StatusOptimal Status = 1

// Solution is the fixture twin of the real lp.Solution.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

// Value reads one primal coordinate.
func (s *Solution) Value(i int) float64 { return s.X[i] }

// Model is the fixture twin of the real lp.Model.
type Model struct{ rows int }

func (m *Model) AddRow(lo, hi float64)         { m.rows++ }
func (m *Model) Objective(x []float64) float64 { return 0 }
func (m *Model) Err() error                    { return nil }

func solve() (*Solution, error) { return &Solution{}, nil }
func newModel() *Model          { return &Model{} }

// blindObjective consumes the result with no check on any path.
func blindObjective() float64 {
	sol, _ := solve()
	return sol.Objective // want stickyerr
}

// blindValue calls Value without checking either.
func blindValue() float64 {
	sol, _ := solve()
	return sol.Value(0) // want stickyerr
}

// blindParam consumes a parameter without checking it, silently pushing
// the whole contract onto its callers.
func blindParam(sol *Solution) []float64 {
	return sol.X // want stickyerr
}

// staleModel consumes a mutated model without consulting Err().
func staleModel() float64 {
	m := newModel()
	m.AddRow(0, 1)
	return m.Objective(nil) // want stickyerr
}

// recheck checks Err, but the later mutation invalidates the check.
func recheck(x []float64) float64 {
	m := newModel()
	m.AddRow(0, 1)
	if m.Err() != nil {
		return 0
	}
	m.AddRow(0, 2)
	return m.Objective(x) // want stickyerr
}

// statusFirst is the sanctioned pattern: look at Status, then consume.
func statusFirst() float64 {
	sol, _ := solve()
	if sol.Status != StatusOptimal {
		return 0
	}
	return sol.Objective
}

// errFirst checks the error returned alongside the solution instead.
func errFirst() []float64 {
	sol, err := solve()
	if err != nil {
		return nil
	}
	return sol.X
}

// lenFirst guards on the primal vector itself.
func lenFirst() float64 {
	sol, _ := solve()
	if len(sol.X) == 0 {
		return 0
	}
	return sol.Objective
}

// usable checks its parameter, which makes it a StatusChecker: callers
// get credit for passing a solution through it.
func usable(sol *Solution) bool {
	return sol.Status == StatusOptimal
}

// viaChecker consumes only after the checker function vetted the
// solution — the StatusCheckerFact call-site credit.
func viaChecker() float64 {
	sol, _ := solve()
	if !usable(sol) {
		return 0
	}
	return sol.Objective
}

// freshModel consumes after the Err look: the sanctioned model pattern.
func freshModel(x []float64) float64 {
	m := newModel()
	m.AddRow(0, 1)
	if m.Err() != nil {
		return 0
	}
	return m.Objective(x)
}
