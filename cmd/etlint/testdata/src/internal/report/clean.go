// Package report is etlint test fixture code for a package OUTSIDE the
// nopanic scope: its panic must not be flagged, while float comparisons
// and tolerance literals still are.
package report

// Tiny is still a tolerance even outside the solver packages.
var Tiny = 2.5e-9 // want toldef

func render(v float64) string {
	if v == 0 { // want floatcmp
		return "-"
	}
	return "value"
}

func mustRender(ok bool) {
	if !ok {
		panic("report: render failed") // out of nopanic scope: allowed
	}
}
