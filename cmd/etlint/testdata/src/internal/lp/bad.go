// Package lp is etlint test fixture code: every planted defect carries
// a want-analyzer marker comment and the etlint smoke test asserts each
// analyzer fires exactly on the marked lines and nowhere else. This
// package path sits inside the nopanic scope on purpose.
package lp

// Eps is a stray tolerance literal.
const Eps = 1e-7 // want toldef

// Gap is a configuration knob, not a tolerance; it must NOT be flagged.
const Gap = 1e-3

func equalExact(a, b float64) bool {
	return a == b // want floatcmp
}

func notEqual(a, b float64) bool {
	return a != b // want floatcmp
}

func intEqual(a, b int) bool {
	return a == b // ints are fine
}

func classify(x float64) string {
	switch x { // want floatcmp
	case 0:
		return "zero"
	}
	return "other"
}

func mustPositive(x float64) {
	if x < 0 {
		panic("negative") // want nopanic
	}
}

// invariant reports a programming error in the solver itself. It is the
// package's documented invariant-violation helper.
func invariant(msg string) {
	panic("lp: " + msg) // sanctioned: documented helper
}

// SolveDirect takes its context first: compliant.
func SolveDirect(ctx context.Context, n int) int { return n }

// Solve has a SolveContext sibling carrying the context: compliant.
func Solve(n int) int { return n }

// SolveContext is Solve's context-aware sibling.
func SolveContext(ctx context.Context, n int) int { return n }

// SolveOrphan has neither a context parameter nor a …Context sibling.
func SolveOrphan(n int) int { return n } // want ctxfirst

// PlanSwappedContext names the Context variant but buries the context.
func PlanSwappedContext(n int, ctx context.Context) int { return n } // want ctxfirst

// Solver is not an entry point: the word boundary after "Solve" is
// lowercase, and entry-point matching must not fire on it.
func Solver(n int) int { return n }

// solvePrivate is unexported and exempt.
func solvePrivate(n int) int { return n }
