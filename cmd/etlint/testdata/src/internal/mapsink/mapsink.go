// Package mapsink is etlint fixture code for the maporder analyzer:
// each planted order-sensitive sink carries a want marker, and the
// order-insensitive idioms below them must stay silent.
package mapsink

// keysUnsorted leaks map order into its result slice.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// printAll emits key/value pairs in iteration order.
func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want maporder
	}
}

// total folds floats in iteration order: not byte-deterministic.
func total(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want maporder
	}
	return s
}

// sink is a stand-in output stream.
type sink struct{}

func (sink) Write(s string) {}

// emitAll writes through an encoder method sink in iteration order.
func emitAll(enc sink, m map[string]int) {
	for k := range m {
		enc.Write(k) // want maporder
	}
}

// keysSorted is the sanctioned idiom: append, then sort after the loop.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// count folds an int: addition is associative, order cannot show.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mirror copies map to map: the destination is order-insensitive.
func mirror(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// perKey builds a fresh slice per iteration: nothing accumulates across
// iterations, so map order cannot reach it.
func perKey(m map[string][]string, f func([]string)) {
	for k, vs := range m {
		row := make([]string, 0, len(vs)+1)
		row = append(row, k)
		row = append(row, vs...)
		f(row)
	}
}

// suppressed demonstrates the ignore directive: the fold would be
// flagged, but the trailing directive suppresses it.
func suppressed(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //etlint:ignore maporder fixture: result feeds a tolerance-based comparison, not an encoding
	}
	return s
}
