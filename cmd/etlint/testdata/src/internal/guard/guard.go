// Package guard is etlint fixture code for the lockguard analyzer. A
// local Mutex stand-in keeps the fixture import-free; lockguard's
// Lock/Unlock recognition is syntactic, so it applies all the same.
package guard

// Mutex is a local stand-in for sync.Mutex.
type Mutex struct{ state int }

func (m *Mutex) Lock()    {}
func (m *Mutex) Unlock()  {}
func (m *Mutex) RLock()   {}
func (m *Mutex) RUnlock() {}

type counter struct {
	mu   Mutex
	n    int // guarded by mu
	name string
}

// readBare reads the guarded field with no lock at all.
func (c *counter) readBare() int {
	return c.n // want lockguard
}

// useAfterUnlock holds the lock for the increment but reads again after
// releasing it.
func (c *counter) useAfterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want lockguard
}

// maybeLocked takes the lock on only one branch: the merge point must
// not count as held.
func (c *counter) maybeLocked(lock bool) {
	if lock {
		c.mu.Lock()
	}
	c.n = 0 // want lockguard
	if lock {
		c.mu.Unlock()
	}
}

// get is the sanctioned read: lock, defer unlock, read.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// snapshot uses the reader lock; RLock counts as held too.
func (c *counter) snapshot() int {
	c.mu.RLock()
	v := c.n
	c.mu.RUnlock()
	return v
}

// bumpLocked increments the count. caller holds mu.
func (c *counter) bumpLocked() {
	c.n++
}

// fold creates its closure under the lock: the closure inherits the
// held set at its creation point.
func (c *counter) fold() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	read := func() int { return c.n }
	return read() + read()
}

// label touches only the unguarded field: no lock needed.
func (c *counter) label() string {
	return c.name
}

// reset runs during single-threaded construction; the directive records
// the reviewed reason.
//
//etlint:ignore lockguard fixture: construction happens-before publication
func (c *counter) reset() {
	c.n = 0
}
