// Command etlint runs the repository's custom static-analysis suite:
//
//   - floatcmp: forbids raw ==/!= (and switch) on float operands
//     outside internal/tol,
//   - toldef: forbids tolerance-sized float literals (exponent ≤ -4)
//     outside internal/tol,
//   - nopanic: forbids panic in internal/{simplex,milp,lp,core} except
//     documented invariant-violation helpers.
//
// Usage:
//
//	etlint [packages]
//
// With no arguments it analyzes ./... in the current directory. It
// prints one line per finding (path:line:col: message [analyzer]) and
// exits 1 if there are findings, 2 on load failure.
package main

import (
	"fmt"
	"os"

	"github.com/etransform/etransform/internal/lint/analysis"
	"github.com/etransform/etransform/internal/lint/driver"
	"github.com/etransform/etransform/internal/lint/floatcmp"
	"github.com/etransform/etransform/internal/lint/nopanic"
	"github.com/etransform/etransform/internal/lint/toldef"
)

// suite is the full etlint analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	floatcmp.Analyzer,
	toldef.Analyzer,
	nopanic.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		return 2
	}
	diags, err := driver.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
