// Command etlint runs the repository's custom static-analysis suite:
//
//   - floatcmp: forbids raw ==/!= (and switch) on float operands
//     outside internal/tol,
//   - toldef: forbids tolerance-sized float literals (exponent ≤ -4)
//     outside internal/tol,
//   - nopanic: forbids panic in internal/{simplex,milp,lp,core} except
//     documented invariant-violation helpers,
//   - ctxfirst: requires exported Solve…/Plan… entry points in the
//     solver packages to take context.Context first (or to have a
//     …Context sibling that does), so cancellation and deadlines can
//     always be threaded through.
//
// Usage:
//
//	etlint [-nopanic-exemptions] [packages]
//
// With no arguments it analyzes ./... in the current directory. It
// prints one line per finding (path:line:col: message [analyzer]) and
// exits 1 if there are findings, 2 on load failure.
//
// With -nopanic-exemptions it instead audits the nopanic escape hatch:
// it prints every function in the solver library packages whose doc
// comment carries the "invariant-violation helper" marker, one per line,
// sorted. scripts/check.sh diffs this output against the reviewed
// allowlist in scripts/nopanic_exemptions.txt, so a newly sanctioned
// panic site (e.g. one slipped into a branch & bound worker, where a
// panic must instead convert to a coordinator error) fails CI until the
// allowlist is deliberately updated.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/etransform/etransform/internal/lint/analysis"
	"github.com/etransform/etransform/internal/lint/ctxfirst"
	"github.com/etransform/etransform/internal/lint/driver"
	"github.com/etransform/etransform/internal/lint/floatcmp"
	"github.com/etransform/etransform/internal/lint/nopanic"
	"github.com/etransform/etransform/internal/lint/toldef"
)

// suite is the full etlint analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	floatcmp.Analyzer,
	toldef.Analyzer,
	nopanic.Analyzer,
	ctxfirst.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("etlint", flag.ContinueOnError)
	audit := fs.Bool("nopanic-exemptions", false,
		"print the sanctioned panic-helper functions in solver packages and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		return 2
	}
	if *audit {
		var names []string
		for _, p := range pkgs {
			names = append(names, nopanic.Exemptions(p.Path, p.Files)...)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return 0
	}
	diags, err := driver.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
