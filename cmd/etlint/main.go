// Command etlint runs the repository's custom static-analysis suite:
//
//   - floatcmp: forbids raw ==/!= (and switch) on float operands
//     outside internal/tol,
//   - toldef: forbids tolerance-sized float literals (exponent ≤ -4)
//     outside internal/tol,
//   - nopanic: forbids panic in internal/{simplex,milp,lp,core} except
//     documented invariant-violation helpers,
//   - ctxfirst: requires exported Solve…/Plan… entry points in the
//     solver packages to take context.Context first (or to have a
//     …Context sibling that does), so cancellation and deadlines can
//     always be threaded through,
//   - maporder: flags map iteration whose order can reach an output
//     sink (slice later encoded, fmt emit, float fold) unsorted,
//     protecting the byte-stable golden-trace contract,
//   - lockguard: checks that fields annotated `// guarded by <mu>` are
//     only touched with the mutex held on every control-flow path,
//   - stickyerr: flags lp.Solution/lp.Model consumption where no path
//     checked Status or Err() first.
//
// Usage:
//
//	etlint [flags] [packages]
//
// With no arguments it analyzes ./... in the current directory. It
// prints one line per finding (path:line:col: message [analyzer]) and
// exits 1 if there are findings, 2 on load failure.
//
// Flags:
//
//	-json              emit diagnostics as a JSON array (for CI tooling)
//	-ignores           list every //etlint:ignore directive with its
//	                   reason and whether it suppressed anything
//	-exemptions-out F  while linting, also write the nopanic exemption
//	                   audit to F (same content as -nopanic-exemptions),
//	                   so the gate script needs a single etlint run
//	-nopanic-exemptions
//	                   print the sanctioned panic-helper functions in
//	                   solver packages and exit
//
// The nopanic audit lists every function in the solver library packages
// whose doc comment carries the "invariant-violation helper" marker,
// one per line, sorted. scripts/check.sh diffs this output against the
// reviewed allowlist in scripts/nopanic_exemptions.txt, so a newly
// sanctioned panic site (e.g. one slipped into a branch & bound worker,
// where a panic must instead convert to a coordinator error) fails CI
// until the allowlist is deliberately updated. //etlint:ignore
// directives get the same treatment through -ignores: every suppression
// carries a mandatory reason and is enumerable in review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/etransform/etransform/internal/lint/analysis"
	"github.com/etransform/etransform/internal/lint/ctxfirst"
	"github.com/etransform/etransform/internal/lint/driver"
	"github.com/etransform/etransform/internal/lint/floatcmp"
	"github.com/etransform/etransform/internal/lint/lockguard"
	"github.com/etransform/etransform/internal/lint/maporder"
	"github.com/etransform/etransform/internal/lint/nopanic"
	"github.com/etransform/etransform/internal/lint/stickyerr"
	"github.com/etransform/etransform/internal/lint/toldef"
)

// suite is the full etlint analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	floatcmp.Analyzer,
	toldef.Analyzer,
	nopanic.Analyzer,
	ctxfirst.Analyzer,
	maporder.Analyzer,
	lockguard.Analyzer,
	stickyerr.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("etlint", flag.ContinueOnError)
	audit := fs.Bool("nopanic-exemptions", false,
		"print the sanctioned panic-helper functions in solver packages and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	listIgnores := fs.Bool("ignores", false,
		"list every //etlint:ignore directive and whether it was used")
	exemptionsOut := fs.String("exemptions-out", "",
		"write the nopanic exemption audit to this file while linting")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		return 2
	}
	if *audit {
		fmt.Print(nopanicAudit(pkgs))
		return 0
	}
	res, err := driver.Analyze(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etlint:", err)
		return 2
	}
	if *exemptionsOut != "" {
		if err := os.WriteFile(*exemptionsOut, []byte(nopanicAudit(pkgs)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "etlint:", err)
			return 2
		}
	}
	if *listIgnores {
		for _, ig := range res.Ignores {
			state := "unused"
			if ig.Used {
				state = "used"
			}
			where := ig.Analyzer
			if ig.Func != "" {
				where += " in func " + ig.Func
			}
			fmt.Printf("%s:%d: ignore %s (%s): %s\n", ig.File, ig.Line, where, state, ig.Reason)
		}
		return 0
	}
	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(res.Diagnostics))
		for _, d := range res.Diagnostics {
			out = append(out, jsonDiag{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "etlint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// nopanicAudit renders the sorted nopanic exemption listing, one
// function per line with a trailing newline (empty when there are
// none).
func nopanicAudit(pkgs []*driver.Package) string {
	var names []string
	for _, p := range pkgs {
		names = append(names, nopanic.Exemptions(p.Path, p.Files)...)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return strings.Join(names, "\n") + "\n"
}
