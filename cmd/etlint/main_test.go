package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/etransform/etransform/internal/lint/driver"
)

// TestAnalyzersOnTestdata loads each fixture package under
// testdata/src, runs the full suite, and requires the findings to match
// the "// want <analyzer>" markers in the fixtures exactly — every
// marked line fires its analyzer, and nothing else fires.
func TestAnalyzersOnTestdata(t *testing.T) {
	root := filepath.Join("testdata", "src")
	for _, rel := range []string{"internal/lp", "internal/report", "internal/mapsink", "internal/guard", "sticky/lp"} {
		t.Run(rel, func(t *testing.T) {
			dir := filepath.Join(root, filepath.FromSlash(rel))
			pkg, err := driver.LoadDir(root, dir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			if pkg.Path != rel {
				t.Fatalf("synthesized package path = %q, want %q", pkg.Path, rel)
			}
			diags, err := driver.Run([]*driver.Package{pkg}, suite)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := make(map[string]int)
			for _, d := range diags {
				got[key(filepath.Base(d.Position.Filename), d.Position.Line, d.Analyzer)]++
			}
			want := wantMarkers(t, dir)
			for k := range want {
				if got[k] == 0 {
					t.Errorf("missing diagnostic %s", k)
				}
			}
			for k, n := range got {
				if !want[k] {
					t.Errorf("unexpected diagnostic %s (x%d)", k, n)
				} else if n != 1 {
					t.Errorf("diagnostic %s reported %d times, want 1", k, n)
				}
			}
		})
	}
}

// TestRunCleanPackage smoke-tests the go list load path end to end:
// etlint over its own (clean) command package must find nothing.
func TestRunCleanPackage(t *testing.T) {
	if code := run([]string{"."}); code != 0 {
		t.Fatalf("run([.]) = %d, want 0", code)
	}
}

// TestRunBadPattern exercises the load-failure exit code.
func TestRunBadPattern(t *testing.T) {
	if code := run([]string{"./does-not-exist/..."}); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2", code)
	}
}

func key(file string, line int, analyzer string) string {
	return fmt.Sprintf("%s:%d [%s]", file, line, analyzer)
}

// wantMarkers scans the fixture files in dir for "// want <analyzer>"
// line markers and returns the expected diagnostic keys.
func wantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			for _, analyzer := range strings.Fields(text[idx+len("// want "):]) {
				want[key(name, line, analyzer)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(want) == 0 {
		t.Fatalf("no want markers found in %s", dir)
	}
	return want
}
