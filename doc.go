// Package etransform is a from-scratch Go reproduction of "eTransform:
// Transforming Enterprise Data Centers by Automated Consolidation"
// (Singh, Shenoy, Ramakrishnan, Kelkar, Vin — ICDCS 2012): a planner
// that consolidates a multi-data-center enterprise IT estate into fewer,
// cheaper locations by solving a mixed-integer linear program over
// space, power, labor, WAN and latency-penalty costs, with an integrated
// single-failure disaster recovery plan.
//
// The implementation lives under internal/ and is exercised through the
// commands in cmd/ and the runnable programs in examples/:
//
//   - internal/lp — MILP modeling, CPLEX LP-file writer/parser
//   - internal/simplex — bounded-variable revised simplex
//   - internal/milp — parallel branch & bound (coordinator + worker pool,
//     deterministic at Workers=1) with diving and warm starts
//   - internal/tol — the single home of every numeric tolerance
//   - internal/certify — independent solution certification
//   - internal/stepwise — volume-discount curves, latency penalty steps
//   - internal/geo — locations, distances, latency models
//   - internal/model — the enterprise domain and shared cost evaluator
//   - internal/core — the eTransform planner (the paper's contribution)
//   - internal/baseline — the manual and greedy comparison heuristics
//   - internal/datagen — the three case-study datasets and sweep topologies
//   - internal/experiments — one harness per paper table and figure
//   - internal/migrate — wave-by-wave migration scheduling for plans
//   - internal/report — tables, ASCII charts, CSV output
//   - internal/lint — the etlint static-analysis suite and its driver
//
// See README.md for a walkthrough, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-versus-measured results. The benchmarks
// in bench_test.go regenerate every table and figure of the paper's
// evaluation.
package etransform
