// Consolidation case study: regenerate the Enterprise1 estate of the
// paper (Figures 2–3: 67 legacy sites, 1070 servers, 190 application
// groups) and consolidate it into 10 candidate locations, comparing
// eTransform against the as-is state and both baseline heuristics —
// the §VI-B experiment.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/etransform/etransform/internal/baseline"
	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/report"
)

func main() {
	state, err := datagen.Enterprise1().Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estate: %d application groups on %d servers in %d legacy sites; %d candidate targets\n\n",
		len(state.Groups), totalServers(state), len(state.Current.DCs), len(state.Target.DCs))

	asIs, err := model.EvaluateAsIs(state)
	if err != nil {
		log.Fatal(err)
	}

	manual, err := baseline.Manual(state, baseline.ManualOptions{})
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := baseline.Greedy(state, baseline.GreedyOptions{})
	if err != nil {
		log.Fatal(err)
	}

	planner, err := core.New(state, core.Options{
		Aggregate: true,
		Solver:    milp.Options{GapTol: 1e-3, TimeLimit: time.Minute},
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Solve()
	if err != nil {
		log.Fatal(err)
	}

	labels := []string{"AS-IS", "MANUAL", "GREEDY", "ETRANSFORM"}
	breakdowns := []model.CostBreakdown{asIs, manual.Cost, greedy.Cost, plan.Cost}
	fmt.Print(report.BarChart("Cost for various solutions — enterprise1", report.CostBars(labels, breakdowns), 50))
	fmt.Println()

	rows := make([][]string, len(labels))
	for i, b := range breakdowns {
		op := b.OperationalCost()
		rows[i] = []string{
			labels[i],
			report.Money(op),
			report.Percent((op - asIs.OperationalCost()) / asIs.OperationalCost()),
			fmt.Sprintf("%d", b.LatencyViolations),
			fmt.Sprintf("%d", b.DCsUsed),
		}
	}
	fmt.Print(report.Table([]string{"algorithm", "op cost", "vs as-is", "latency violations", "DCs used"}, rows))

	fmt.Printf("\neTransform plan detail:\n%s", report.PlanReport(state, plan))
}

func totalServers(s *model.AsIsState) int {
	n := 0
	for i := range s.Groups {
		n += s.Groups[i].Servers
	}
	return n
}
