// Integrated disaster recovery planning: consolidate the Enterprise1
// estate while simultaneously choosing a secondary (failover) site for
// every application group and sizing the shared single-failure backup
// pools — the §IV/§VI-C experiment. Compare against naively bolting a
// mirror site onto the as-is estate.
//
//	go run ./examples/drplanning
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/etransform/etransform/internal/baseline"
	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/report"
)

func main() {
	state, err := datagen.Enterprise1().Generate()
	if err != nil {
		log.Fatal(err)
	}

	asIsDR, err := baseline.AsIsPlusDR(state)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as-is + mirror-site DR: %s (buying %d backup servers)\n\n",
		report.Money(asIsDR.OperationalCost()+asIsDR.BackupCapital), asIsDR.TotalBackupServers)

	planner, err := core.New(state, core.Options{
		DR:        true,
		Omega:     0.6, // no DC may hold more than 60% of the app groups
		Aggregate: true,
		Solver:    milp.Options{GapTol: 5e-3, MaxNodes: 500, TimeLimit: 45 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Solve()
	if err != nil {
		log.Fatal(err)
	}

	cost := plan.Cost.OperationalCost() + plan.Cost.BackupCapital
	base := asIsDR.OperationalCost() + asIsDR.BackupCapital
	fmt.Printf("eTransform integrated plan: %s (%s vs as-is+DR)\n",
		report.Money(cost), report.Percent((cost-base)/base))
	fmt.Printf("  shared backup pools: %d servers total (vs %d mirrored naively)\n",
		plan.Cost.TotalBackupServers, asIsDR.TotalBackupServers)
	fmt.Printf("  latency violations after failover: %d\n\n", plan.Cost.LatencyViolations)

	ids := make([]string, 0, len(plan.BackupServers))
	for id := range plan.BackupServers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Println("backup pool placement:")
	for _, id := range ids {
		fmt.Printf("  %-12s %4d backup servers\n", id, plan.BackupServers[id])
	}

	// Show a few failover routes.
	fmt.Println("\nsample failover routes (primary → secondary):")
	for i, a := range plan.Assignments {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-8s %s → %s\n", a.GroupID, a.PrimaryDC, a.SecondaryDC)
	}
	fmt.Printf("\nsolver: %d rows × %d cols, gap %.2g\n", plan.Stats.Rows, plan.Stats.Cols, plan.Stats.Gap)
}
