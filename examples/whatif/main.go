// What-if analysis: the admin interface for iterative modification
// (paper Figure 5). Solve the baseline consolidation, then interactively
// tighten it — pin a regulated group to a specific site, forbid a site
// under decommission — re-solving after each change and reporting the
// cost of every constraint.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/report"
)

func main() {
	state, err := datagen.Enterprise1().Generate()
	if err != nil {
		log.Fatal(err)
	}
	planner, err := core.New(state, core.Options{
		Aggregate: true,
		Solver:    milp.Options{GapTol: 1e-3, TimeLimit: 30 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}

	solve := func(label string) *model.Plan {
		plan, err := planner.Solve()
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-34s %s/month, %d DCs, %d violations\n",
			label, report.Money(plan.Cost.Total()), plan.Cost.DCsUsed, plan.Cost.LatencyViolations)
		return plan
	}

	baselinePlan := solve("unconstrained optimum:")
	baseCost := baselinePlan.Cost.Total()

	// Scenario 1: compliance pins a group to a specific site.
	pinned := state.Groups[0].ID
	pinTo := "target-5"
	if err := planner.Pin(pinned, pinTo); err != nil {
		log.Fatal(err)
	}
	p1 := solve(fmt.Sprintf("pin %s → %s:", pinned, pinTo))
	fmt.Printf("  cost of that pin: %s/month\n", report.Money(p1.Cost.Total()-baseCost))

	// Scenario 2: a site is being decommissioned — forbid it for a
	// sensitive group.
	victim := baselinePlan.Assignments[1]
	if err := planner.Forbid(victim.GroupID, victim.PrimaryDC); err != nil {
		log.Fatal(err)
	}
	p2 := solve(fmt.Sprintf("also forbid %s at %s:", victim.GroupID, victim.PrimaryDC))
	fmt.Printf("  where it went instead: %s\n", p2.AssignmentFor(victim.GroupID).PrimaryDC)

	// Scenario 3: risk officer caps any site at 40%% of the groups.
	planner2, err := core.New(state, core.Options{
		Omega:     0.4,
		Aggregate: true,
		Solver:    milp.Options{GapTol: 1e-3, TimeLimit: 30 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	plan3, err := planner2.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %s/month, %d DCs\n", "business-impact cap ω=0.4:",
		report.Money(plan3.Cost.Total()), plan3.Cost.DCsUsed)
	fmt.Printf("  cost of spreading risk: %s/month\n", report.Money(plan3.Cost.Total()-baseCost))
}
