// Quickstart: build a tiny enterprise estate in code, run the eTransform
// planner, and print the to-be plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/geo"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/report"
	"github.com/etransform/etransform/internal/stepwise"
)

func main() {
	// A latency penalty of $100 per user applies when the average
	// latency exceeds 10 ms (§VI-B's standard setting).
	penalty, err := stepwise.SingleThreshold(10, 100)
	if err != nil {
		log.Fatal(err)
	}

	dc := func(id string, capacity int, space, power, labor, wan float64) model.DataCenter {
		return model.DataCenter{
			ID:              id,
			Location:        geo.Location{ID: "loc-" + id, Region: geo.RegionNorthAmerica},
			CapacityServers: capacity,
			// Volume discounts: list price for the first 20 servers, 15%
			// off per further tier of 20, floored at 60% of list.
			SpaceCost:         mustCurve(space),
			PowerCostPerKWh:   power,
			LaborCostPerAdmin: labor,
			WANCostPerMb:      wan,
		}
	}

	state := &model.AsIsState{
		Name: "quickstart",
		Groups: []model.AppGroup{
			{ID: "erp", Servers: 12, DataMbPerMonth: 4000, UsersByLocation: []int{200, 0}, LatencyPenalty: penalty, CurrentDC: "hq-basement"},
			{ID: "payroll", Servers: 4, DataMbPerMonth: 500, UsersByLocation: []int{50, 20}, CurrentDC: "hq-basement"},
			{ID: "ordering", Servers: 9, DataMbPerMonth: 6000, UsersByLocation: []int{0, 300}, LatencyPenalty: penalty, CurrentDC: "branch-room"},
			{ID: "bi", Servers: 6, DataMbPerMonth: 1500, UsersByLocation: []int{30, 30}, CurrentDC: "branch-room"},
		},
		UserLocations: []geo.Location{
			{ID: "east", Name: "east-coast offices"},
			{ID: "west", Name: "west-coast offices"},
		},
		Current: model.Estate{
			DCs: []model.DataCenter{
				dc("hq-basement", 40, 240, 0.16, 9200, 0.06),
				dc("branch-room", 40, 260, 0.17, 9400, 0.07),
			},
			LatencyMs: [][]float64{{8, 14}, {16, 9}},
		},
		Target: model.Estate{
			DCs: []model.DataCenter{
				dc("colo-east", 60, 70, 0.08, 5800, 0.015),
				dc("colo-west", 60, 64, 0.07, 6800, 0.014),
				dc("colo-central", 80, 58, 0.09, 5600, 0.013),
			},
			LatencyMs: [][]float64{
				{5, 22, 10}, // east users
				{22, 5, 10}, // west users
			},
		},
		Params: model.DefaultParams(),
	}

	asIs, err := model.EvaluateAsIs(state)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as-is: %s/month across %d server rooms, %d latency violations\n\n",
		report.Money(asIs.OperationalCost()), asIs.DCsUsed, asIs.LatencyViolations)

	planner, err := core.New(state, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.PlanReport(state, plan))
	saving := (asIs.OperationalCost() - plan.Cost.OperationalCost()) / asIs.OperationalCost()
	fmt.Printf("\nconsolidation saves %s of the as-is operational cost\n", report.Percent(saving))
	for _, a := range plan.Assignments {
		fmt.Printf("  %-10s → %s\n", a.GroupID, a.PrimaryDC)
	}
}

func mustCurve(base float64) stepwise.Curve {
	c, err := stepwise.VolumeDiscount(base, 20, base*0.15, base*0.6, 4)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
