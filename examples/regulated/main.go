// Regulated global estate: consolidate a multinational running on real
// geography (geodesic latencies between world metros) under
// data-residency constraints (groups pinned to their users' region) and
// shared-risk separation, then turn the plan into a capacity-safe
// migration schedule.
//
//	go run ./examples/regulated
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/etransform/etransform/internal/core"
	"github.com/etransform/etransform/internal/datagen"
	"github.com/etransform/etransform/internal/migrate"
	"github.com/etransform/etransform/internal/milp"
	"github.com/etransform/etransform/internal/model"
	"github.com/etransform/etransform/internal/report"
)

func main() {
	state, err := datagen.Global().Generate()
	if err != nil {
		log.Fatal(err)
	}
	// Business rule: the two largest groups are redundant halves of the
	// payment stack — never co-locate them.
	big1, big2 := largestTwo(state)
	state.Groups[big1].SharedRiskGroup = "payments"
	state.Groups[big2].SharedRiskGroup = "payments"

	residency := 0
	for i := range state.Groups {
		if len(state.Groups[i].AllowedRegions) > 0 {
			residency++
		}
	}
	fmt.Printf("estate: %d groups across %d legacy rooms, %d candidate metros; %d groups region-locked\n\n",
		len(state.Groups), len(state.Current.DCs), len(state.Target.DCs), residency)

	asIs, err := model.EvaluateAsIs(state)
	if err != nil {
		log.Fatal(err)
	}

	planner, err := core.New(state, core.Options{
		Aggregate:           true,
		ComputeShadowPrices: true,
		Solver:              milp.Options{GapTol: 2e-3, TimeLimit: time.Minute},
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.PlanReport(state, plan))
	saving := (asIs.OperationalCost() - plan.Cost.OperationalCost()) / asIs.OperationalCost()
	fmt.Printf("\nsaves %s vs the as-is estate (%s/month), %d shared-risk violations\n",
		report.Percent(saving), report.Money(asIs.OperationalCost()), plan.Cost.SharedRiskViolations)

	// Residency check: every region-locked group landed in-region.
	for i := range state.Groups {
		g := &state.Groups[i]
		if len(g.AllowedRegions) == 0 {
			continue
		}
		dst := plan.AssignmentFor(g.ID).PrimaryDC
		j := state.Target.DCIndex(dst)
		if state.Target.DCs[j].Location.Region != g.AllowedRegions[0] {
			log.Fatalf("residency violated: %s placed at %s", g.ID, dst)
		}
	}
	fmt.Println("all data-residency constraints satisfied")

	if len(plan.CapacityShadow) > 0 {
		fmt.Println("\nwhere extra capacity would pay (LP shadow prices):")
		ids := make([]string, 0, len(plan.CapacityShadow))
		for id := range plan.CapacityShadow {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %-10s %s per server slot per month\n", id, report.Money(plan.CapacityShadow[id]))
		}
	}

	waves, err := migrate.Schedule(state, plan, migrate.Options{MaxServersPerWave: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigration: %d waves of ≤200 servers each\n", len(waves))
	for _, w := range waves {
		fmt.Printf("  wave %d: %d groups, %d servers\n", w.Number, len(w.Moves), w.Servers())
	}
}

func largestTwo(s *model.AsIsState) (int, int) {
	a, b := 0, 1
	if s.Groups[b].Servers > s.Groups[a].Servers {
		a, b = b, a
	}
	for i := 2; i < len(s.Groups); i++ {
		switch {
		case s.Groups[i].Servers > s.Groups[a].Servers:
			a, b = i, a
		case s.Groups[i].Servers > s.Groups[b].Servers:
			b = i
		}
	}
	return a, b
}
